"""Integration modes: how the two reduction operations share the GPU.

Section 4(3) of the paper enumerates exactly these options and Fig. 2
compares their throughput; GPU-for-compression wins on the testbed, but
the paper is explicit that the right choice is platform-dependent, which
is what :mod:`~repro.core.calibration` is for.
"""

from __future__ import annotations

import enum


class IntegrationMode(enum.Enum):
    """Which reduction operations may use the GPU."""

    #: Both deduplication indexing and compression use the GPU.
    GPU_BOTH = "gpu_both"
    #: Only deduplication indexing may be offloaded.
    GPU_DEDUP = "gpu_dedup"
    #: Only compression runs on the GPU (the paper's winner).
    GPU_COMP = "gpu_comp"
    #: The GPU is not used at all.
    CPU_ONLY = "cpu_only"

    @property
    def gpu_for_dedup(self) -> bool:
        """True when index lookups may be offloaded."""
        return self in (IntegrationMode.GPU_BOTH, IntegrationMode.GPU_DEDUP)

    @property
    def gpu_for_compression(self) -> bool:
        """True when compression runs on the GPU."""
        return self in (IntegrationMode.GPU_BOTH, IntegrationMode.GPU_COMP)

    @classmethod
    def all_modes(cls) -> list["IntegrationMode"]:
        """The four options, in the paper's Fig. 2 order."""
        return [cls.GPU_BOTH, cls.GPU_DEDUP, cls.GPU_COMP, cls.CPU_ONLY]
