"""The integrated inline data-reduction pipeline (paper Fig. 1).

One :class:`ReductionPipeline` run drives a chunk stream through the
paper's workflow on the timed substrates:

1. **chunk + hash** on a CPU hardware thread;
2. **GPU indexing** first, when the mode allows it, the GPU exists, and
   the CPU is saturated (the paper's §3.1(3) rule) — batched lookups
   through the device's in-order queue;
3. **CPU indexing** for chunks the GPU did not resolve: bin-buffer probe,
   then bin-tree probe (the probe is skipped when an eviction-free GPU
   index already proved the fingerprint absent);
4. duplicates are mapped onto their stored copy; uniques continue to
5. **compression**, on the CPU (chunk-per-thread QuickLZ-class) or on the
   GPU (segment-parallel LZ batches + CPU post-processing refinement);
6. **commit**: metadata insert + bin-buffer staging; a full bin flushes —
   entries move to the bin tree and the GPU bins, and the bin's
   compressed payload destages to the SSD as one sequential write.

Concurrency: admission of chunks into the pipeline is gated by a window
of in-flight slots (the inline path's bounded outstanding I/O).  That
window is load-bearing for the paper's Fig. 2: in ``GPU_BOTH`` mode,
index lookups queue behind multi-millisecond compression batches, chunk
latency inflates, the window throttles admission, and throughput drops
below ``GPU_COMP`` — exactly the contention the paper reports.

The destage path is asynchronous and does not backpressure the reduction
path; the paper's throughput numbers are reduction-operation throughput
measured against the SSD as a *yardstick*, not an end-to-end
destage-limited figure (its dedup result is 3x the SSD's own rate, which
is only possible on those terms).
"""

from __future__ import annotations

import hashlib
from typing import Generator, Iterable, Optional

from repro.chunkbatch import iter_windows
from repro.core.batcher import GpuBatcher
from repro.core.config import PipelineConfig
from repro.core.scheduler import OffloadScheduler
from repro.core.stats import PipelineReport
from repro.compression.gpu_lz import GpuCompressor
from repro.compression.memo import CodecMemo
from repro.compression.parallel_cpu import CompressionResult, CpuCompressor
from repro.cpu.costs import CpuCosts, DEFAULT_COSTS
from repro.cpu.model import SimCpu
from repro.dedup.engine import DedupEngine
from repro.dedup.gpu_index import GpuBinIndex
from repro.dedup.hashing import (PayloadHashMemo, fingerprint_chunk,
                                 fingerprint_window)
from repro.dedup.replacement import RandomReplacement
from repro.errors import ConfigError
from repro.gpu.costs import DEFAULT_GPU_COSTS, GpuKernelCosts
from repro.gpu.device import GpuDevice
from repro.obs.metrics import MetricsRegistry
from repro.obs.stages import (
    CTR_BUFFER_HITS,
    CTR_PENDING_HITS,
    STAGE_ADMISSION,
    STAGE_CHUNK,
    STAGE_CHUNKING,
    STAGE_COMMIT,
    STAGE_COMPACTION,
    STAGE_COMPRESS,
    STAGE_CPU_INDEX,
    STAGE_DESTAGE,
    STAGE_FINGERPRINT,
    STAGE_GPU_INDEX,
    STAGE_PENDING_WAIT,
    STAGE_POSTPROCESS,
    TRACK_COMPACTION,
    TRACK_DESTAGE,
    TRACK_WINDOW,
)
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.tenancy.controller import (
    ADMIT_HIT,
    ADMIT_MISS,
    ADMIT_SKIP,
    TenancyController,
)
from repro.verify import MemoVerifier
from repro.sim import Environment, Resource
from repro.sim.histogram import LatencyHistogram
from repro.storage.block import BlockRequest, RequestKind
from repro.storage.ssd import SsdModel
from repro.types import Chunk


class ReductionPipeline:
    """Timed, integrated dedup + compression over simulated hardware."""

    def __init__(self, env: Environment, config: PipelineConfig,
                 cpu: Optional[SimCpu] = None,
                 gpu: Optional[GpuDevice] = None,
                 ssd: Optional[SsdModel] = None,
                 cpu_costs: CpuCosts = DEFAULT_COSTS,
                 gpu_costs: GpuKernelCosts = DEFAULT_GPU_COSTS,
                 tracer: Tracer = NULL_TRACER):
        self.env = env
        self.config = config
        self.costs = cpu_costs
        self.tracer = tracer
        self.cpu = cpu if cpu is not None else SimCpu(env)
        self.ssd = ssd if ssd is not None else SsdModel(env, tracer=tracer)
        needs_gpu = (config.mode.gpu_for_dedup
                     or config.mode.gpu_for_compression)
        if needs_gpu and gpu is None:
            gpu = GpuDevice(env,
                            priority_queue=config.gpu_queue_priority,
                            tracer=tracer)
        self.gpu = gpu

        gpu_index = None
        if config.mode.gpu_for_dedup and config.enable_dedup:
            gpu_index = GpuBinIndex(
                prefix_bytes=config.prefix_bytes,
                bin_capacity=config.gpu_bin_capacity,
                policy=RandomReplacement(seed=7),
                memory=self.gpu.memory if self.gpu else None,
                costs=gpu_costs)
        self.dedup = DedupEngine(
            prefix_bytes=config.prefix_bytes,
            btree_min_degree=config.btree_min_degree,
            bin_buffer_capacity=config.bin_buffer_capacity,
            bin_buffer_total=config.bin_buffer_total,
            gpu_index=gpu_index,
            costs=cpu_costs) if config.enable_dedup else None

        #: Multi-tenant admission layer (DESIGN.md §15); None under the
        #: default policy, which keeps every single-stream code path —
        #: and therefore every report — byte-identical to a pre-tenancy
        #: pipeline.
        self.tenancy: Optional[TenancyController] = None
        if config.tenancy_policy != "none":
            self.tenancy = TenancyController(
                policy=config.tenancy_policy,
                cache_entries=config.tenancy_cache_entries,
                window=config.tenancy_window,
                skip_threshold=config.tenancy_skip_threshold,
                min_observe=config.tenancy_min_observe,
                rebalance_period=config.tenancy_rebalance_period,
                compaction_batch=config.compaction_batch)

        memo = (CodecMemo(capacity=config.codec_memo_entries)
                if config.codec_memo_entries else None)
        self.cpu_comp = CpuCompressor(costs=cpu_costs, memo=memo)
        self.gpu_comp = GpuCompressor(
            segments_per_chunk=config.gpu_segments_per_chunk,
            cpu_costs=cpu_costs, gpu_costs=gpu_costs, memo=memo)

        #: Runtime twin of the REP701/REP702 static contract: replays
        #: sampled memo hits, reports divergence via finish_check.
        self.verifier: Optional[MemoVerifier] = None
        if config.verify_memos:
            self.verifier = MemoVerifier()
            env.register_finishable(self.verifier)
            if memo is not None:
                memo.verifier = self.verifier
            self.cpu_comp.verifier = self.verifier

        self.scheduler = OffloadScheduler(
            self.cpu, policy=config.gpu_index_policy,
            saturation_threshold=config.cpu_saturation_threshold,
            gpu_available=self.gpu is not None)
        self._index_batcher: Optional[GpuBatcher] = None
        self._comp_batcher: Optional[GpuBatcher] = None
        #: One big lock serializing index work in the "global" baseline.
        self._index_lock = (Resource(env, capacity=1, name="index-lock")
                            if config.index_locking == "global" else None)
        self._window = Resource(env, capacity=config.window, name="window")
        #: In-flight fingerprint table: fingerprints currently being
        #: processed as uniques, mapping to the event their commit fires.
        #: A concurrent chunk with the same fingerprint waits for that
        #: commit and then dedups against it, instead of wastefully
        #: compressing the same content twice (standard inline-dedup
        #: in-flight tracking).
        self._pending: dict[bytes, object] = {}
        #: Batched functional plane: compression results the feeder
        #: precomputed per admission seq (dedup-disabled configs only,
        #: where every chunk reaches compression exactly once).
        self._precomp: dict[int, CompressionResult] = {}
        self._done = 0
        self._total = 0
        self._finished = env.event()
        self._destage_procs = 0
        # -- statistics --
        self.bytes_in = 0
        self.destage_batches = 0
        self.destage_bytes = 0
        self.gpu_offload_skips = 0
        self.latency = LatencyHistogram()

    # -- batcher wiring -----------------------------------------------------

    def _ensure_batchers(self) -> None:
        cfg = self.config
        if (cfg.mode.gpu_for_dedup and cfg.enable_dedup
                and self._index_batcher is None):
            index = self.dedup.gpu_index
            tiled = cfg.gpu_index_tiled
            self._index_batcher = GpuBatcher(
                self.env, self.gpu,
                make_kernel=lambda fps: index.make_kernel(fps,
                                                          tiled=tiled),
                split_results=lambda fps, slots: index.record_results(
                    fps, slots),
                batch_size=cfg.gpu_index_batch,
                max_wait_s=cfg.gpu_batch_wait_s,
                name="gpu-index", priority=0,
                tracer=self.tracer, stage=STAGE_GPU_INDEX)
        if (cfg.mode.gpu_for_compression and cfg.enable_compression
                and self._comp_batcher is None):
            self._comp_batcher = GpuBatcher(
                self.env, self.gpu,
                make_kernel=self.gpu_comp.make_kernel,
                split_results=self.gpu_comp.split_results,
                batch_size=cfg.gpu_comp_batch,
                max_wait_s=cfg.gpu_batch_wait_s,
                name="gpu-comp", priority=1,
                tracer=self.tracer, stage=STAGE_COMPRESS)

    # -- the per-chunk workflow (Fig. 1) ------------------------------------

    def _should_offload_index(self) -> bool:
        """Delegate the placement decision to the offload scheduler."""
        if self._index_batcher is None:
            return False
        decision = self.scheduler.should_offload_index()
        self.gpu_offload_skips = self.scheduler.stats.skipped_idle_cpu
        return decision

    def _index_execute(self, cycles: float) -> Generator:
        """Charge CPU cycles for index work, honouring the lock baseline.

        The paper's bins need no lock ("without locking mechanism"); the
        conventional shared-table baseline serializes here.
        """
        if self._index_lock is None:
            yield self.cpu.charge(cycles)
            return
        with self._index_lock.request() as lock:
            yield lock
            yield from self.cpu.execute(cycles)

    def _chunk_worker(self, chunk: Chunk, slot, seq: int = 0) -> Generator:
        """Per-chunk pipeline process: ingest through commit.

        The whole chunk lifecycle lives in ONE generator frame —
        a nested ``yield from`` delegate would add a frame hop to
        every event resume on the hottest path in the simulator.

        ``seq`` is the chunk's admission sequence number, used only as
        its trace identity.  All tracing is guarded by ``trace`` being
        non-None, so an untraced run executes the exact event sequence
        it executed before tracing existed; the derived timing math
        (queue-wait vs. service splits) lives in the tracer, never here.
        """
        admitted = self.env.now
        trace = self.tracer if self.tracer.enabled else None
        try:
            cfg = self.config
            costs = self.costs
            tenancy = self.tenancy
            verdict = None
            tenant_id = 0
            if cfg.enable_dedup and tenancy is not None:
                # Multi-tenant admission (DESIGN.md §15): the verdict
                # comes from the bounded inline fingerprint cache, not
                # the unbounded index.  Hits commit against the
                # canonical record; misses and skips fall through to
                # compression and store (canonically or as a deferred
                # shadow copy — see the commit section below).
                if chunk.fingerprint is None:
                    fingerprint_chunk(chunk)
                tenant_id = chunk.tenant if chunk.tenant is not None \
                    else 0
                verdict = tenancy.admit(tenant_id, chunk.fingerprint)
                if verdict == ADMIT_SKIP:
                    # Inline skip: low-locality stream — no hash, no
                    # cache probe on the inline path; compaction
                    # re-fingerprints the chunk in the background.
                    cycles = (costs.chunking_cycles(chunk.size,
                                                    cfg.content_defined)
                              + costs.handoff_per_chunk)
                    yield self.cpu.charge(cycles)
                    if trace is not None:
                        trace.record_since(
                            STAGE_CHUNKING, seq, admitted,
                            expected_service_s=self.cpu.seconds(cycles))
                    chunk.is_duplicate = False
                else:
                    ingest = (self.dedup.ingest_cycles(
                        chunk, cfg.content_defined)
                        + costs.handoff_per_chunk)
                    yield self.cpu.charge(ingest)
                    if trace is not None:
                        chunking = costs.chunking_cycles(
                            chunk.size, cfg.content_defined)
                        trace.record_split(
                            (STAGE_CHUNKING, STAGE_FINGERPRINT), seq,
                            admitted,
                            weights=(chunking, ingest - chunking),
                            expected_service_s=self.cpu.seconds(ingest))
                    start = self.env.now if trace is not None else 0.0
                    yield self.cpu.charge(costs.bin_buffer_probe)
                    if trace is not None:
                        trace.record_since(
                            STAGE_CPU_INDEX, seq, start,
                            expected_service_s=self.cpu.seconds(
                                costs.bin_buffer_probe),
                            attrs={"path": "tenant_cache"})
                    if verdict == ADMIT_HIT and self.dedup.metadata \
                            .lookup(chunk.fingerprint) is not None:
                        chunk.is_duplicate = True
                        start = self.env.now if trace is not None else 0.0
                        cycles = self.dedup.commit_duplicate(chunk)
                        yield self.cpu.charge(cycles)
                        if trace is not None:
                            trace.record_since(
                                STAGE_COMMIT, seq, start,
                                expected_service_s=self.cpu.seconds(
                                    cycles),
                                attrs={"path": "tenant_hit"})
                        return
                    # A hit whose canonical record is still in flight
                    # (or is a compaction-promoted shadow) cannot
                    # dedup inline; it falls through to a raw shadow
                    # store and compaction recovers the duplicate.
                    chunk.is_duplicate = False
            elif cfg.enable_dedup:
                if chunk.fingerprint is None:
                    # The batched feeder fingerprints whole windows up
                    # front; only per-chunk admission still hashes here.
                    fingerprint_chunk(chunk)
                # One coalesced charge for ingest (chunk + hash) plus the
                # stage handoff: a single acquire/hold/release round trip.
                ingest = (self.dedup.ingest_cycles(chunk,
                                                   cfg.content_defined)
                          + costs.handoff_per_chunk)
                yield self.cpu.charge(ingest)
                if trace is not None:
                    # The coalesced charge covers two workflow stages;
                    # split the measured interval by cycle weight.
                    chunking = costs.chunking_cycles(chunk.size,
                                                     cfg.content_defined)
                    trace.record_split(
                        (STAGE_CHUNKING, STAGE_FINGERPRINT), seq,
                        admitted, weights=(chunking, ingest - chunking),
                        expected_service_s=self.cpu.seconds(ingest))

                gpu_definitive = False
                if self._should_offload_index():
                    # The batcher records the gpu_index span itself
                    # (submit -> kernel completion, per item).
                    hit = yield self._index_batcher.submit(
                        chunk.fingerprint, trace_id=seq)
                    if hit:
                        start = self.env.now if trace is not None else 0.0
                        cycles = self.dedup.note_gpu_hit(chunk)
                        yield self.cpu.charge(cycles)
                        if trace is not None:
                            trace.record_since(
                                STAGE_COMMIT, seq, start,
                                expected_service_s=self.cpu.seconds(cycles),
                                attrs={"path": "gpu_hit"})
                        return
                    # An eviction-free GPU index mirrors every flushed entry,
                    # so its miss proves the fingerprint is not in the tree.
                    gpu_definitive = self.dedup.gpu_index.evictions == 0

                start = self.env.now if trace is not None else 0.0
                outcome = self.dedup.cpu_index_partial(chunk) if gpu_definitive \
                    else self.dedup.cpu_index(chunk)
                if self._index_lock is None:
                    yield self.cpu.charge(outcome.cpu_cycles)
                else:
                    yield from self._index_execute(outcome.cpu_cycles)
                if trace is not None:
                    trace.record_since(
                        STAGE_CPU_INDEX, seq, start,
                        expected_service_s=self.cpu.seconds(
                            outcome.cpu_cycles),
                        attrs={"path": outcome.path})
                if outcome.duplicate:
                    start = self.env.now if trace is not None else 0.0
                    cycles = self.dedup.commit_duplicate(chunk)
                    yield self.cpu.charge(cycles)
                    if trace is not None:
                        trace.record_since(
                            STAGE_COMMIT, seq, start,
                            expected_service_s=self.cpu.seconds(cycles),
                            attrs={"path": "duplicate"})
                    return
                # In-flight check: another worker may be compressing this very
                # content right now.  Wait for its commit, then dedup onto it.
                pending = self._pending.get(chunk.fingerprint)
                if pending is not None:
                    start = self.env.now if trace is not None else 0.0
                    yield pending
                    if trace is not None:
                        trace.record_since(STAGE_PENDING_WAIT, seq, start)
                    self.dedup.counters[CTR_PENDING_HITS] += 1
                    chunk.is_duplicate = True
                    start = self.env.now if trace is not None else 0.0
                    cycles = self.dedup.commit_duplicate(chunk)
                    yield self.cpu.charge(cycles)
                    if trace is not None:
                        trace.record_since(
                            STAGE_COMMIT, seq, start,
                            expected_service_s=self.cpu.seconds(cycles),
                            attrs={"path": "pending"})
                    return
                # Our index probe ran earlier in simulated time; a twin may
                # have committed since.  Its fingerprint would be in the bin
                # buffer *now*, so re-probe before claiming uniqueness.
                if self.dedup.bin_buffer.lookup(chunk.fingerprint) is not None:
                    self.dedup.counters[CTR_BUFFER_HITS] += 1
                    chunk.is_duplicate = True
                    start = self.env.now if trace is not None else 0.0
                    cycles = self.costs.bin_buffer_probe \
                        + self.dedup.commit_duplicate(chunk)
                    if self._index_lock is None:
                        yield self.cpu.charge(cycles)
                    else:
                        yield from self._index_execute(cycles)
                    if trace is not None:
                        trace.record_since(
                            STAGE_COMMIT, seq, start,
                            expected_service_s=self.cpu.seconds(cycles),
                            attrs={"path": "buffer_reprobe"})
                    return
                self._pending[chunk.fingerprint] = self.env.event()
            else:
                ingest = (costs.chunking_cycles(chunk.size,
                                                cfg.content_defined)
                          + costs.handoff_per_chunk)
                yield self.cpu.charge(ingest)
                if trace is not None:
                    trace.record_since(
                        STAGE_CHUNKING, seq, admitted,
                        expected_service_s=self.cpu.seconds(ingest))

            # -- unique chunk: compression stage --
            blob: Optional[bytes] = None
            if cfg.enable_compression:
                if self._comp_batcher is not None:
                    # The batcher records the compress span itself.
                    raw = yield self._comp_batcher.submit(chunk,
                                                          trace_id=seq)
                    start = self.env.now if trace is not None else 0.0
                    result = self.gpu_comp.postprocess(chunk, raw)
                    cycles = result.cpu_cycles + costs.handoff_per_chunk
                    yield self.cpu.charge(cycles)
                    if trace is not None:
                        trace.record_since(
                            STAGE_POSTPROCESS, seq, start,
                            expected_service_s=self.cpu.seconds(cycles))
                else:
                    start = self.env.now if trace is not None else 0.0
                    result = self._precomp.pop(seq, None)
                    if result is None:
                        result = self.cpu_comp.compress(chunk)
                    cycles = result.cpu_cycles + costs.handoff_per_chunk
                    yield self.cpu.charge(cycles)
                    if trace is not None:
                        trace.record_since(
                            STAGE_COMPRESS, seq, start,
                            expected_service_s=self.cpu.seconds(cycles),
                            resource="cpu",
                            attrs={"stored_raw": result.stored_raw})
                blob = result.blob
            else:
                chunk.compressed_size = chunk.size

            # -- commit --
            if cfg.enable_dedup and tenancy is not None:
                start = self.env.now if trace is not None else 0.0
                fingerprint = chunk.fingerprint
                metadata = self.dedup.metadata
                if chunk.compressed_size is None:
                    chunk.compressed_size = chunk.size
                if tenancy.store_as_unique(verdict, fingerprint,
                                           metadata):
                    metadata.store_unique(fingerprint, chunk.size,
                                          chunk.compressed_size,
                                          blob=blob)
                    metadata.map_logical(chunk.offset, fingerprint,
                                         chunk.size)
                    tenancy.commit_stored(tenant_id)
                    path = "tenant_unique"
                else:
                    # Raw shadow copy: an inline skip, or a miss whose
                    # canonical owner already exists (hidden duplicate).
                    # Compaction remaps it and sweeps the blob later.
                    shadow = hashlib.sha1(
                        f"tenancy-shadow:{seq}".encode()).digest()
                    metadata.store_unique(shadow, chunk.size,
                                          chunk.compressed_size,
                                          blob=blob)
                    metadata.map_logical(chunk.offset, shadow,
                                         chunk.size)
                    tenancy.defer(seq, tenant_id, chunk.offset,
                                  chunk.size, fingerprint, shadow)
                    tenancy.commit_shadow(tenant_id)
                    path = "tenant_shadow"
                cycles = (costs.bin_buffer_insert + costs.metadata_update
                          + costs.destage_submit)
                yield self.cpu.charge(cycles)
                if trace is not None:
                    trace.record_since(
                        STAGE_COMMIT, seq, start,
                        expected_service_s=self.cpu.seconds(cycles),
                        attrs={"path": path})
                if cfg.destage_enabled:
                    self._spawn_destage(chunk.compressed_size,
                                        sequential=False)
                    self.destage_batches += 1
                    self.destage_bytes += chunk.compressed_size
                ready = tenancy.take_compaction_batch()
                if ready is not None:
                    self._spawn_compaction(ready)
            elif cfg.enable_dedup:
                start = self.env.now if trace is not None else 0.0
                cycles, batch, unique = self.dedup.commit_unique(chunk, blob)
                pending = self._pending.pop(chunk.fingerprint, None)
                if pending is not None:
                    pending.succeed()
                if self._index_lock is None:
                    yield self.cpu.charge(cycles)
                else:
                    yield from self._index_execute(cycles)
                if trace is not None:
                    trace.record_since(
                        STAGE_COMMIT, seq, start,
                        expected_service_s=self.cpu.seconds(cycles),
                        attrs={"path": "unique" if unique
                               else "race_duplicate"})
                if batch is not None and cfg.destage_enabled:
                    self._spawn_destage(batch.payload_bytes, sequential=True)
                    self.destage_batches += 1
                    self.destage_bytes += batch.payload_bytes
            else:
                start = self.env.now if trace is not None else 0.0
                # Commit + metadata coalesced into one charge.
                cycles = costs.metadata_update + costs.destage_submit
                yield self.cpu.charge(cycles)
                if trace is not None:
                    trace.record_since(
                        STAGE_COMMIT, seq, start,
                        expected_service_s=self.cpu.seconds(cycles))
                if cfg.destage_enabled:
                    self._spawn_destage(chunk.compressed_size, sequential=False)
                    self.destage_batches += 1
                    self.destage_bytes += chunk.compressed_size

        finally:
            elapsed = self.env.now - admitted
            self.latency.record(elapsed)
            if self.tenancy is not None:
                self.tenancy.record_latency(
                    chunk.tenant if chunk.tenant is not None else 0,
                    elapsed)
            if trace is not None:
                # The whole-chunk envelope: exactly the latency sample.
                attrs = {"duplicate": bool(chunk.is_duplicate)}
                if self.tenancy is not None:
                    attrs["tenant"] = chunk.tenant \
                        if chunk.tenant is not None else 0
                trace.record(STAGE_CHUNK, seq, start=admitted,
                             attrs=attrs)
            self._window.release(slot)
            self._done += 1
            if self._done == self._total:
                self._finished.succeed()

    def _spawn_destage(self, nbytes: int, sequential: bool) -> None:
        if nbytes <= 0:
            return

        def destage() -> Generator:
            with self.tracer.span(STAGE_DESTAGE, resource=TRACK_DESTAGE,
                                  bytes=nbytes, sequential=sequential):
                yield from self.ssd.submit(BlockRequest(
                    RequestKind.WRITE, 0, nbytes, sequential=sequential))

        self.env.process(destage())

    def _spawn_compaction(self, entries: list) -> None:
        """One out-of-line compaction epoch as a background process."""
        def compaction() -> Generator:
            with self.tracer.span(STAGE_COMPACTION,
                                  resource=TRACK_COMPACTION,
                                  chunks=len(entries)):
                cycles = self.tenancy.compaction_cycles(entries,
                                                        self.costs)
                yield self.cpu.charge(cycles)
                self.tenancy.apply_compaction(entries,
                                              self.dedup.metadata)

        self.env.process(compaction())

    def _spawn_destage_vector(self, sizes: list[int],
                              sequential: bool) -> None:
        def destage() -> Generator:
            with self.tracer.span(STAGE_DESTAGE, resource=TRACK_DESTAGE,
                                  bytes=sum(sizes), sequential=sequential,
                                  vector=len(sizes)):
                yield from self.ssd.submit_vector(sizes,
                                                  sequential=sequential)

        self.env.process(destage())

    # -- run ----------------------------------------------------------------

    def _feeder(self, chunks: Iterable[Chunk]) -> Generator:
        if self.config.batched_functional:
            yield from self._feeder_batched(chunks)
            return
        rate = self.config.arrival_rate_iops
        gap = 1.0 / rate if rate else 0.0
        next_admission = 0.0
        trace = self.tracer if self.tracer.enabled else None
        for seq, chunk in enumerate(chunks):
            if gap:
                delay = next_admission - self.env.now
                if delay > 0:
                    yield self.env.timeout(delay)
                next_admission = max(next_admission, self.env.now) + gap
            request = self._window.request()
            requested = self.env.now if trace is not None else 0.0
            yield request
            if trace is not None:
                # Pure queueing for a window slot, before admission.
                trace.record_since(STAGE_ADMISSION, seq, requested,
                                   resource=TRACK_WINDOW)
            self.bytes_in += chunk.size
            self.env.process(self._chunk_worker(chunk, request, seq))

    def _feeder_batched(self, chunks: Iterable[Chunk]) -> Generator:
        """Window-batched feeder: the array-native functional plane.

        Per window, the untimed functional work runs once up front —
        one fingerprint pass (duplicate payloads resolved by LRU probe
        instead of a fresh SHA-1) and, in dedup-disabled configurations,
        one grouped codec dispatch whose results the workers pop by
        admission seq.  Admission itself — pacing, window-slot
        acquisition, worker spawn — stays strictly per chunk, so the
        timed event schedule (and therefore every report field) is
        identical to the per-chunk feeder's (DESIGN.md §12).
        """
        cfg = self.config
        rate = cfg.arrival_rate_iops
        gap = 1.0 / rate if rate else 0.0
        next_admission = 0.0
        trace = self.tracer if self.tracer.enabled else None
        hash_memo = PayloadHashMemo() if cfg.enable_dedup else None
        if hash_memo is not None and self.verifier is not None:
            hash_memo.verifier = self.verifier
        precompress = (cfg.enable_compression and not cfg.enable_dedup
                       and self._comp_batcher is None)
        precomp = self._precomp
        seq = 0
        for window in iter_windows(chunks, cfg.functional_batch):
            if hash_memo is not None:
                fingerprint_window(window, memo=hash_memo)
            if precompress:
                # Safe exactly because dedup is off: every chunk
                # reaches compression once, in admission order, and
                # the codecs are pure — see compress_window.
                results = self.cpu_comp.compress_window(window)
                for i, result in enumerate(results):
                    precomp[seq + i] = result
            for chunk in window:
                if gap:
                    delay = next_admission - self.env.now
                    if delay > 0:
                        yield self.env.timeout(delay)
                    next_admission = max(next_admission,
                                         self.env.now) + gap
                request = self._window.request()
                requested = self.env.now if trace is not None else 0.0
                yield request
                if trace is not None:
                    trace.record_since(STAGE_ADMISSION, seq, requested,
                                       resource=TRACK_WINDOW)
                self.bytes_in += chunk.size
                self.env.process(self._chunk_worker(chunk, request, seq))
                seq += 1

    def run(self, chunks: Iterable[Chunk], total: int) -> PipelineReport:
        """Process ``total`` chunks from ``chunks`` and report.

        ``total`` must match the iterable's length; it lets the pipeline
        detect completion without materializing the stream.
        """
        if total <= 0:
            raise ConfigError("need at least one chunk")
        self._total = total
        self._ensure_batchers()
        self.env.process(self._feeder(chunks))
        self.env.run(until=self._finished)
        duration = self.env.now
        # Snapshot the Fig. 1 counters before the shutdown drain so the
        # report reflects steady-state traffic only.
        counters = dict(self.dedup.counters) if self.dedup else {}
        for batcher in (self._index_batcher, self._comp_batcher):
            if batcher is not None:
                batcher.stop()
        # Shutdown drain: partially filled bins still hold staged data;
        # it must reach the SSD for the endurance ledger to balance.
        # The drain stays event-per-batch even in batched mode: a
        # coalesced submit_vector reproduces the wear ledger and the
        # *sum* of channel busy time exactly, but the utilization
        # integral accumulates through a different float segmentation
        # and drifts by an ULP — and the report contract is *byte*
        # identity, not mathematical identity (DESIGN.md §12).
        if self.dedup is not None and self.config.destage_enabled:
            for batch in self.dedup.drain():
                self._spawn_destage(batch.payload_bytes, sequential=True)
                self.destage_batches += 1
                self.destage_bytes += batch.payload_bytes
        # Out-of-line compaction drain: every still-deferred shadow copy
        # gets its background epoch before the report reads the
        # metadata store, so recovered duplicates fold into dedup_ratio.
        if self.tenancy is not None:
            for entries in self.tenancy.drain_compaction():
                self._spawn_compaction(entries)
        # Let stragglers (destage writes, batcher shutdown) settle for
        # reporting, without extending the measured duration.
        self.env.run()
        if self.config.finish_check or self.config.verify_memos:
            self.env.finish_check()
        return self._report(duration, counters)

    def _report(self, duration: float,
                counters: dict[str, int]) -> PipelineReport:
        metadata = self.dedup.metadata if self.dedup else None
        comp = (self.gpu_comp if self._comp_batcher is not None
                else self.cpu_comp)
        dedup_ratio = metadata.dedup_ratio() if metadata else 1.0
        reduction = metadata.reduction_ratio() if metadata else \
            comp.achieved_ratio()
        return PipelineReport(
            chunks=self._total,
            bytes_in=self.bytes_in,
            duration_s=duration,
            counters=counters,
            cpu_utilization=self.cpu.utilization(until=duration),
            gpu_utilization=(self.gpu.utilization(until=duration)
                             if self.gpu else 0.0),
            ssd_utilization=self.ssd.utilization(until=duration),
            gpu_kernels=self.gpu.kernels_launched if self.gpu else 0,
            gpu_mean_queue_wait_s=(self.gpu.mean_queue_wait()
                                   if self.gpu else 0.0),
            dedup_ratio=dedup_ratio,
            comp_ratio=comp.achieved_ratio(),
            reduction_ratio=reduction,
            destage_batches=self.destage_batches,
            destage_bytes=self.destage_bytes,
            nand_bytes_written=self.ssd.nand_bytes_written,
            mean_latency_s=self.latency.mean,
            peak_latency_s=self.latency.peak,
            latency_percentiles=self.latency.summary(),
            mode=self.config.mode.value,
        )

    def publish_metrics(self,
                        registry: Optional[MetricsRegistry] = None
                        ) -> MetricsRegistry:
        """Export every subsystem's counters into one namespaced registry.

        Idempotent: absorbing the same live counters twice only applies
        the delta, so the registry can be re-published mid-run.
        """
        registry = registry if registry is not None else MetricsRegistry()
        registry.absorb_counters("pipeline", {
            "chunks_done": self._done,
            "bytes_in": self.bytes_in,
            "destage_batches": self.destage_batches,
            "destage_bytes": self.destage_bytes,
            "gpu_offload_skips": self.gpu_offload_skips,
        })
        registry.attach_histogram("pipeline.latency_s", self.latency)
        if self.dedup is not None:
            registry.absorb_counters("dedup", self.dedup.counters)
        if self.tenancy is not None:
            registry.absorb_counters("tenancy", self.tenancy.counters())
        registry.absorb_counters("scheduler",
                                 self.scheduler.stats.as_counters())
        if self.gpu is not None:
            registry.absorb_counters("gpu", {
                "kernels_launched": self.gpu.kernels_launched,
            })
        registry.absorb_counters("ssd", {
            "host_bytes_written": self.ssd.host_bytes_written,
            "host_bytes_read": self.ssd.host_bytes_read,
            "nand_bytes_written": self.ssd.nand_bytes_written,
            "requests_completed": self.ssd.requests_completed,
            "trims": self.ssd.trims,
            "read_retries": self.ssd.read_retries,
        })
        registry.absorb_counters("compress.cpu", self.cpu_comp.stats())
        registry.absorb_counters("compress.gpu", self.gpu_comp.stats())
        for batcher in (self._index_batcher, self._comp_batcher):
            if batcher is not None:
                registry.absorb_counters(f"batcher.{batcher.name}", {
                    "batches_launched": batcher.batches_launched,
                    "items_processed": batcher.items_processed,
                })
                fill = batcher.fill_summary()
                prefix = f"batcher.{batcher.name}"
                registry.gauge(f"{prefix}.fill_mean").set(
                    fill["mean_fill"])
                registry.gauge(f"{prefix}.fill_p50").set(
                    fill["p50_fill"])
                registry.gauge(f"{prefix}.fill_fraction").set(
                    fill["fill_fraction"])
        return registry
