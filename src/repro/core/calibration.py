"""Dummy-I/O calibration (paper §4(3), closing paragraph).

"Because hardware specifications may be different on different platforms,
we cannot guarantee that this integration is always right.  Therefore,
before assigning processors to each data reduction operation, the
performance of these integration methods is compared using dummy I/O."

:func:`calibrate_mode` runs a short synthetic stream through every
integration mode on the *given* hardware specs and returns the ranking.
The A5 benchmark uses it to show the chooser picking different winners on
different platforms (weak GPU -> CPU_ONLY, the testbed -> GPU_COMP).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.config import PipelineConfig
from repro.core.modes import IntegrationMode
from repro.core.pipeline import ReductionPipeline
from repro.cpu.costs import CpuCosts, DEFAULT_COSTS
from repro.cpu.model import CpuSpec, I7_2600K, SimCpu
from repro.gpu.costs import DEFAULT_GPU_COSTS, GpuKernelCosts
from repro.gpu.device import GpuDevice, GpuSpec, RADEON_HD_7970
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.sim import Environment
from repro.storage.ssd import SAMSUNG_SSD_830, SsdModel, SsdSpec
from repro.workload.vdbench import VdbenchStream


@dataclass
class CalibrationResult:
    """Ranking of the integration modes on one platform."""

    best_mode: IntegrationMode
    iops_by_mode: dict[IntegrationMode, float]
    dummy_chunks: int

    def speedup_over_cpu_only(self) -> float:
        """Best mode's advantage over the no-GPU baseline."""
        cpu_only = self.iops_by_mode.get(IntegrationMode.CPU_ONLY, 0.0)
        if cpu_only <= 0:
            return float("inf")
        return self.iops_by_mode[self.best_mode] / cpu_only

    def table(self) -> str:
        """Formatted per-mode ranking."""
        lines = [f"{'mode':<12} {'K IOPS':>10}"]
        for mode in IntegrationMode.all_modes():
            if mode in self.iops_by_mode:
                marker = "  <-- best" if mode is self.best_mode else ""
                lines.append(f"{mode.value:<12} "
                             f"{self.iops_by_mode[mode] / 1e3:>10.1f}"
                             f"{marker}")
        return "\n".join(lines)


def run_mode(mode: IntegrationMode, n_chunks: int,
             base_config: Optional[PipelineConfig] = None,
             cpu_spec: CpuSpec = I7_2600K,
             gpu_spec: Optional[GpuSpec] = RADEON_HD_7970,
             ssd_spec: SsdSpec = SAMSUNG_SSD_830,
             cpu_costs: CpuCosts = DEFAULT_COSTS,
             gpu_costs: GpuKernelCosts = DEFAULT_GPU_COSTS,
             dedup_ratio: float = 2.0, comp_ratio: float = 2.0,
             seed: int = 1234, tracer: Optional[Tracer] = None,
             payload: bool = False):
    """Run one integration mode on a fresh simulated platform.

    ``tracer`` (a :class:`~repro.obs.SimTracer`) is bound to the run's
    environment and threaded through every timed subsystem; the default
    is the zero-cost null tracer.

    ``payload`` switches the workload to real bytes (the functional
    data plane: hashing, codecs, memos) instead of descriptors; it is
    required for ``PipelineConfig.verify_memos`` to have anything to
    verify.

    Returns the :class:`~repro.core.stats.PipelineReport`.
    """
    config = (base_config or PipelineConfig()).with_overrides(mode=mode)
    if gpu_spec is None and (mode.gpu_for_dedup
                             or mode.gpu_for_compression):
        raise ValueError(f"mode {mode.value} needs a GPU spec")
    if tracer is None:
        tracer = NULL_TRACER
    env = Environment()
    tracer.bind(env)
    cpu = SimCpu(env, cpu_spec)
    gpu = (GpuDevice(env, gpu_spec, tracer=tracer)
           if gpu_spec is not None else None)
    ssd = SsdModel(env, ssd_spec, tracer=tracer)
    pipeline = ReductionPipeline(env, config, cpu=cpu, gpu=gpu, ssd=ssd,
                                 cpu_costs=cpu_costs, gpu_costs=gpu_costs,
                                 tracer=tracer)
    stream = VdbenchStream(dedup_ratio=dedup_ratio, comp_ratio=comp_ratio,
                           chunk_size=config.chunk_size, seed=seed,
                           payload=payload)
    if pipeline.verifier is not None:
        stream.verifier = pipeline.verifier
    source = (stream.chunks_batched(n_chunks, config.functional_batch)
              if config.batched_functional else stream.chunks(n_chunks))
    return pipeline.run(source, total=n_chunks)


def calibrate_mode(base_config: Optional[PipelineConfig] = None,
                   cpu_spec: CpuSpec = I7_2600K,
                   gpu_spec: Optional[GpuSpec] = RADEON_HD_7970,
                   ssd_spec: SsdSpec = SAMSUNG_SSD_830,
                   cpu_costs: CpuCosts = DEFAULT_COSTS,
                   gpu_costs: GpuKernelCosts = DEFAULT_GPU_COSTS,
                   dummy_chunks: int = 8192,
                   dedup_ratio: float = 2.0, comp_ratio: float = 2.0,
                   seed: int = 1234) -> CalibrationResult:
    """Rank every integration mode with a dummy-I/O pass; pick the best."""
    modes = list(IntegrationMode.all_modes())
    if gpu_spec is None:
        modes = [IntegrationMode.CPU_ONLY]
    iops: dict[IntegrationMode, float] = {}
    for mode in modes:
        report = run_mode(mode, dummy_chunks, base_config=base_config,
                          cpu_spec=cpu_spec, gpu_spec=gpu_spec,
                          ssd_spec=ssd_spec, cpu_costs=cpu_costs,
                          gpu_costs=gpu_costs, dedup_ratio=dedup_ratio,
                          comp_ratio=comp_ratio, seed=seed)
        iops[mode] = report.iops
    best = max(iops, key=iops.get)
    return CalibrationResult(best_mode=best, iops_by_mode=iops,
                             dummy_chunks=dummy_chunks)
