"""The paper's primary contribution: integrated inline data reduction.

:class:`~repro.core.pipeline.ReductionPipeline` implements the Fig. 1
workflow — chunk, hash, GPU-then-CPU bin indexing, compression on the
processor the :class:`~repro.core.modes.IntegrationMode` assigns, bin
buffering, sequential destaging, and GPU-bin maintenance — all timed on
the CPU/GPU/SSD substrates.

:mod:`~repro.core.calibration` implements the paper's closing idea: run a
short dummy-I/O pass through every integration mode on the actual
platform and commit to the fastest ("we can ensure the best performance
even if the target platform is different").
"""

from repro.core.calibration import CalibrationResult, calibrate_mode
from repro.core.config import PipelineConfig
from repro.core.modes import IntegrationMode
from repro.core.pipeline import ReductionPipeline
from repro.core.stats import PipelineReport

__all__ = [
    "CalibrationResult",
    "calibrate_mode",
    "PipelineConfig",
    "IntegrationMode",
    "ReductionPipeline",
    "PipelineReport",
]
