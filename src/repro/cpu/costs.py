"""CPU cost table: the calibration single-source-of-truth.

Every timed CPU operation in the library charges cycles from this table.
The constants are calibrated so that the model reproduces the paper's two
absolute anchors on the i7-2600K testbed:

* CPU-only parallel deduplication  ~ 209 K chunks/s  (3x SSD / 1.15 per §4(1))
* CPU-only parallel compression    ~ 50 K chunks/s at comp-ratio ~1.2 (§4(2))

and leaves everything else (GPU gains, integration-mode ordering) as model
*predictions* checked against the paper in EXPERIMENTS.md.

Units: cycles, or cycles per byte, on one hardware thread.  SMT sharing is
handled by :class:`~repro.cpu.model.CpuSpec.smt_derate`, not here.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class CpuCosts:
    """Cycles-per-operation constants for the CPU-side cost model."""

    # -- chunking ---------------------------------------------------------
    #: Fixed-size chunking: pointer arithmetic plus a copy-out touch.
    fixed_chunking_per_byte: float = 0.5
    #: Content-defined chunking: one Rabin rolling-hash step per byte.
    cdc_chunking_per_byte: float = 4.0

    # -- fingerprinting -----------------------------------------------------
    #: SHA-1 over chunk payload (OpenSSL-class implementation).
    sha1_per_byte: float = 13.0
    #: Fixed per-chunk SHA-1 overhead (init/finalize/padding).
    sha1_fixed: float = 800.0

    # -- indexing (bin-based, paper §3.1) -----------------------------------
    #: Probe of the small in-memory bin buffer (hot, hash-map lookup).
    bin_buffer_probe: float = 900.0
    #: Insert into the bin buffer.
    bin_buffer_insert: float = 1_200.0
    #: Lookup in the per-bin B-tree ("bin tree"): cache-missing node walk.
    bin_tree_probe_per_level: float = 800.0
    #: Fixed part of a bin-tree lookup (bin selection, setup).
    bin_tree_probe_fixed: float = 11_000.0
    #: Insert into the bin tree, including amortized splits and the entry
    #: memcpy; charged only for unique chunks.
    bin_tree_insert: float = 22_000.0
    #: Amortized cost of bin-buffer flush handling per unique chunk
    #: (buffer drain, sequential write issue, GPU-bin update bookkeeping).
    flush_amortized_per_unique: float = 26_000.0

    # -- compression (QuickLZ-class fast LZ, paper §3.2) --------------------
    #: Baseline encode cost per input byte when almost nothing matches.
    lz_encode_per_byte_base: float = 48.0
    #: Extra per-byte search cost that *decreases* as matches lengthen:
    #: effective per-byte = base + slope / comp_ratio.  Long matches let
    #: the encoder skip ahead, so high-ratio data compresses faster.
    lz_encode_ratio_slope: float = 48.0
    #: Decode cost per output byte (decode is much cheaper than encode).
    lz_decode_per_byte: float = 6.0
    #: Fixed per-chunk codec overhead (state setup, header).
    lz_fixed: float = 2_500.0

    # -- GPU-result post-processing (paper §3.2(2)) --------------------------
    #: CPU refinement of raw GPU match output into a valid stream,
    #: per input byte of the chunk.
    postprocess_per_byte: float = 19.0
    #: Fixed per-chunk post-processing overhead.
    postprocess_fixed: float = 2_000.0

    # -- destaging / metadata ------------------------------------------------
    #: Per-chunk metadata update (logical map, refcount).
    metadata_update: float = 2_600.0
    #: Per-chunk I/O submission overhead for destage writes.
    destage_submit: float = 2_200.0

    # -- plumbing -------------------------------------------------------------
    #: Per-task dispatch overhead of the thread pool (enqueue + wakeup),
    #: charged once per pipeline batch per stage.
    dispatch_per_batch: float = 28_000.0
    #: Per-chunk cost of moving a chunk descriptor between pipeline stages.
    handoff_per_chunk: float = 350.0
    #: memcpy-class byte shuffling (staging buffers).
    memcpy_per_byte: float = 0.25

    def with_overrides(self, **kwargs: float) -> "CpuCosts":
        """Return a copy with the given constants replaced."""
        return replace(self, **kwargs)

    # -- derived helpers -----------------------------------------------------

    def sha1_cycles(self, nbytes: int) -> float:
        """Cycles to fingerprint a chunk of ``nbytes``."""
        return self.sha1_fixed + self.sha1_per_byte * nbytes

    def chunking_cycles(self, nbytes: int, content_defined: bool) -> float:
        """Cycles to chunk ``nbytes`` of stream data."""
        per_byte = (self.cdc_chunking_per_byte if content_defined
                    else self.fixed_chunking_per_byte)
        return per_byte * nbytes

    def bin_tree_probe(self, tree_levels: int) -> float:
        """Cycles for one bin-tree lookup through ``tree_levels`` levels."""
        return (self.bin_tree_probe_fixed
                + self.bin_tree_probe_per_level * max(1, tree_levels))

    def lz_encode_cycles(self, nbytes: int, comp_ratio: float) -> float:
        """Cycles to LZ-encode a chunk given its achieved compression ratio.

        ``comp_ratio`` is original/compressed (>= 1.0).  More compressible
        data encodes faster because long matches advance the cursor in
        strides, which is the effect the paper reports ("the throughput is
        high when the compression ratio is high").
        """
        ratio = max(1.0, comp_ratio)
        per_byte = self.lz_encode_per_byte_base + self.lz_encode_ratio_slope / ratio
        return self.lz_fixed + per_byte * nbytes

    def lz_decode_cycles(self, out_bytes: int) -> float:
        """Cycles to decode a chunk back to ``out_bytes`` of plaintext."""
        return self.lz_fixed + self.lz_decode_per_byte * out_bytes

    def postprocess_cycles(self, nbytes: int) -> float:
        """Cycles to refine raw GPU match output for an ``nbytes`` chunk."""
        return self.postprocess_fixed + self.postprocess_per_byte * nbytes


#: Calibrated default table (see DESIGN.md §6 and EXPERIMENTS.md).
DEFAULT_COSTS = CpuCosts()
