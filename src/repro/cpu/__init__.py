"""Multi-core CPU substrate.

The paper's testbed CPU is an Intel i7-2600K (4 cores / 8 hardware threads
@ 3.4 GHz).  :class:`~repro.cpu.model.SimCpu` models that chip as a counted
resource of hardware threads on the discrete-event engine, and
:mod:`~repro.cpu.costs` holds the cycles-per-byte cost table every timed
CPU-side operation charges against.
"""

from repro.cpu.costs import CpuCosts, DEFAULT_COSTS
from repro.cpu.model import CpuSpec, SimCpu, I7_2600K

__all__ = ["CpuCosts", "DEFAULT_COSTS", "CpuSpec", "SimCpu", "I7_2600K"]
