"""Timed multi-core CPU model.

:class:`SimCpu` exposes the chip to the rest of the library as a pool of
hardware threads (a :class:`~repro.sim.resources.Resource`) plus a
cycles-to-seconds conversion.  Functional work runs as ordinary Python;
only *time* flows through this model, which is what lets a single-core
container report multi-core throughput faithfully.

SMT: the i7-2600K has 8 logical threads on 4 cores.  Two SMT siblings
sharing a core do not double throughput; we apply a constant per-thread
derate so that total chip throughput equals ``threads * smt_derate`` core
equivalents (8 x 0.65 = 5.2 for the default spec), a standard rule of
thumb for throughput-bound integer workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.errors import ConfigError
from repro.sim import Environment, Event, Resource
from repro.sim.engine import Timeout
from repro.sim.resources import Request


@dataclass(frozen=True, slots=True)
class CpuSpec:
    """Static description of a CPU."""

    name: str
    cores: int
    threads: int
    freq_hz: float
    #: Effective per-logical-thread speed factor under full SMT load.
    smt_derate: float = 0.65

    def __post_init__(self) -> None:
        if self.cores < 1 or self.threads < self.cores:
            raise ConfigError(
                f"invalid core/thread counts: {self.cores}/{self.threads}")
        if self.freq_hz <= 0:
            raise ConfigError(f"invalid frequency: {self.freq_hz}")
        if not 0.0 < self.smt_derate <= 1.0:
            raise ConfigError(f"invalid smt_derate: {self.smt_derate}")

    @property
    def thread_hz(self) -> float:
        """Effective cycle rate of one busy logical thread."""
        if self.threads == self.cores:
            return self.freq_hz
        return self.freq_hz * self.smt_derate

    @property
    def chip_hz(self) -> float:
        """Aggregate cycle rate of the fully loaded chip."""
        return self.thread_hz * self.threads


#: The paper's testbed CPU.
I7_2600K = CpuSpec(name="Intel i7-2600K", cores=4, threads=8, freq_hz=3.4e9)


class _ChargeRequest(Request):
    """Queue token for a contended :meth:`SimCpu.charge`.

    Unlike a plain :class:`Request`, the grant never fires an event:
    when the resource grants it, it synchronously starts the timed hold
    and only triggers (resuming the charging process) once the hold
    elapses and the thread is back in the pool — so a contended charge
    costs exactly one calendar entry (the hold timeout) instead of a
    grant event plus a timeout.
    """

    __slots__ = ("_delay",)

    def __init__(self, resource: Resource, delay: float):
        self._delay = delay
        super().__init__(resource)

    def _grant(self) -> None:
        timeout = Timeout(self.env, self._delay)
        timeout.callbacks.append(self._finished)

    def _finished(self, _timeout: Event) -> None:
        self.resource.release(self)
        self._trigger_now(self)


class SimCpu:
    """A multi-core CPU as a simulated resource of hardware threads."""

    __slots__ = ("env", "spec", "name", "threads", "cycles_charged")

    def __init__(self, env: Environment, spec: CpuSpec = I7_2600K,
                 name: str = "cpu"):
        self.env = env
        self.spec = spec
        self.name = name
        self.threads = Resource(env, capacity=spec.threads, name=name)
        #: Total cycles charged, for sanity checks and utilization reports.
        self.cycles_charged = 0.0

    def seconds(self, cycles: float) -> float:
        """Convert a cycle count on one thread to simulated seconds."""
        if cycles < 0:
            raise ConfigError(f"negative cycle count: {cycles}")
        return cycles / self.spec.thread_hz

    def execute(self, cycles: float) -> Generator:
        """Process body: occupy one hardware thread for ``cycles`` cycles.

        Usage from a simulation process::

            yield from cpu.execute(costs.sha1_cycles(4096))
        """
        with self.threads.request() as req:
            yield req
            self.cycles_charged += cycles
            yield self.env.timeout(self.seconds(cycles))

    def charge(self, cycles: float) -> Event:
        """Single-event CPU charge: acquire a thread, hold it for
        ``cycles`` cycles, release — all behind ONE yieldable event.

        This is the hot-path replacement for ``yield from execute(...)``:
        uncontended it costs one :class:`Timeout` and zero request
        events; contended it degrades to the classic FIFO request path.
        Usage from a simulation process::

            yield cpu.charge(costs.sha1_cycles(4096))

        The returned event must be yielded promptly and exactly once.
        Unlike :meth:`execute`, the charge is not interrupt-safe: an
        interrupted waiter keeps the thread busy until the charge
        completes (use ``execute`` where interrupts are expected).
        """
        threads = self.threads
        self.cycles_charged += cycles
        delay = self.seconds(cycles)
        if threads.try_acquire():
            timeout = Timeout(self.env, delay)
            timeout.callbacks.append(self._charge_done)
            return timeout
        return _ChargeRequest(threads, delay)

    def _charge_done(self, _event: Event) -> None:
        self.threads.release_acquired()

    def execute_for(self, seconds: float) -> Generator:
        """Process body: occupy one hardware thread for a fixed duration."""
        with self.threads.request() as req:
            yield req
            self.cycles_charged += seconds * self.spec.thread_hz
            yield self.env.timeout(seconds)

    def utilization(self, until: Optional[float] = None) -> float:
        """Mean fraction of hardware threads busy so far."""
        return self.threads.monitor.utilization(until)

    def is_saturated(self, threshold: float = 1.0) -> bool:
        """True when at least ``threshold`` of the threads are busy *now*.

        This is the signal the paper's scheduler uses: "use GPU only when
        CPU utilization is full and there is still some work to do".
        """
        return self.threads.count >= self.spec.threads * threshold

    def __repr__(self) -> str:
        return (f"<SimCpu {self.spec.name}: {self.spec.cores}C/"
                f"{self.spec.threads}T @ {self.spec.freq_hz/1e9:.2f} GHz>")
