"""Shard executors: in-process serial, and a spawner/worker mp split.

Both executors expose the same three-call protocol the cluster engine
drives — ``submit(routed_window)``, ``finish() -> [shard reports]``,
``close()`` — and both return the per-shard reports in fixed shard-id
order, which is what makes the merged report byte-identical across
executor choices (the merge folds shard 0, 1, …, N-1 regardless of
which shard finished first).

The multiprocessing executor follows the Bodo-style spawner/worker
split: the parent owns the stream, the router and the NetLink; each
child owns exactly one :class:`~repro.cluster.shardwork.ShardWorker`
and receives its sub-windows over a private pipe.  Windows are pure
routed data and reports are plain dicts, so no shard state ever
crosses a process boundary except through those two messages.  The
``fork`` start method is preferred (no re-import cost); ``spawn`` is
the fallback — the worker entrypoint is a module-level function so
both work.
"""

from __future__ import annotations

import multiprocessing
from typing import Optional

from repro.cluster.router import RoutedWindow
from repro.cluster.shardwork import ShardSpec, ShardWorker
from repro.errors import ConfigError

__all__ = ["EXECUTORS", "MpExecutor", "SerialExecutor", "make_executor"]

#: Registered executor names (CLI / config surface).
EXECUTORS = ("serial", "mp")

#: Seconds to wait for a child to exit after its final report.
_JOIN_TIMEOUT_S = 30.0


class SerialExecutor:
    """All shard workers in the parent process, run inline."""

    name = "serial"

    def __init__(self, nodes: int, spec: ShardSpec = ShardSpec()):
        self._workers = [ShardWorker(shard, spec)
                         for shard in range(nodes)]

    def submit(self, window: RoutedWindow) -> None:
        self._workers[window.shard].process(window)

    def finish(self) -> list[dict]:
        return [worker.finish() for worker in self._workers]

    def close(self) -> None:
        pass


def _shard_worker_main(conn, shard_id: int, spec: ShardSpec) -> None:
    """Child entrypoint: drain routed windows, answer with the report."""
    worker = ShardWorker(shard_id, spec)
    try:
        while True:
            window = conn.recv()
            if window is None:
                conn.send(worker.finish())
                return
            worker.process(window)
    finally:
        conn.close()


class MpExecutor:
    """One child process per shard, fed over private pipes."""

    name = "mp"

    def __init__(self, nodes: int, spec: ShardSpec = ShardSpec(),
                 start_method: Optional[str] = None):
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        context = multiprocessing.get_context(start_method)
        self._connections = []
        self._processes = []
        for shard in range(nodes):
            parent_end, child_end = context.Pipe()
            process = context.Process(
                target=_shard_worker_main,
                args=(child_end, shard, spec),
                name=f"repro-shard-{shard}",
                daemon=True)
            process.start()
            child_end.close()
            self._connections.append(parent_end)
            self._processes.append(process)

    def submit(self, window: RoutedWindow) -> None:
        self._connections[window.shard].send(window)

    def finish(self) -> list[dict]:
        """Sentinel every pipe, then collect reports in shard order."""
        for connection in self._connections:
            connection.send(None)
        reports = [connection.recv() for connection in self._connections]
        for process in self._processes:
            process.join(timeout=_JOIN_TIMEOUT_S)
        return reports

    def close(self) -> None:
        for connection in self._connections:
            connection.close()
        for process in self._processes:
            if process.is_alive():
                process.terminate()
                process.join(timeout=_JOIN_TIMEOUT_S)


def make_executor(name: str, nodes: int,
                  spec: ShardSpec = ShardSpec()):
    """Executor instance for a registered executor name."""
    if name == "serial":
        return SerialExecutor(nodes, spec)
    if name == "mp":
        return MpExecutor(nodes, spec)
    raise ConfigError(
        f"unknown executor {name!r}; pick one of {EXECUTORS}")
