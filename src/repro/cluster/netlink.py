"""Modeled cluster interconnect, charged through the sim engine.

HPDedup's lesson applies at cluster scale: a remote index is not free
to reach, so cross-node traffic must be charged explicitly rather than
hidden in per-chunk cycle costs.  The :class:`NetLink` owns a private
:class:`~repro.sim.engine.Environment` with one
:class:`~repro.sim.resources.Resource` of ``links`` lanes; every
dispatch/flush/rebalance transfer becomes a sim process that occupies
a lane for ``latency + (bytes + headers) / bandwidth`` seconds, so the
utilization monitor and the tracer (stage names from
:mod:`repro.obs.stages`) see real queueing, not a closed-form sum.

All charges are issued by the parent (ingest-side) engine in
deterministic window/shard order, which keeps the resulting
:class:`NetReport` byte-identical across executor choices — the shard
workers never touch the link (DESIGN.md §14).
"""

from __future__ import annotations

from typing import NamedTuple, Optional

from repro.errors import ConfigError
from repro.obs.stages import (
    STAGE_NET_DISPATCH,
    STAGE_NET_FLUSH,
    STAGE_NET_REBALANCE,
    TRACK_NET,
)
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.sim.engine import Environment
from repro.sim.resources import Resource

__all__ = ["NET_KINDS", "NetLink", "NetLinkSpec", "NetReport"]

#: The traffic classes the link accounts separately.
NET_KINDS = (STAGE_NET_DISPATCH, STAGE_NET_FLUSH, STAGE_NET_REBALANCE)


class NetLinkSpec(NamedTuple):
    """Interconnect cost model (defaults: one 10 GbE lane)."""

    bandwidth_bytes_per_s: float = 1.25e9
    latency_s: float = 20e-6
    links: int = 1
    #: Per-message framing overhead added to the byte charge.
    header_bytes: int = 64


class NetReport(NamedTuple):
    """Deterministic link accounting for the merged report."""

    bytes_by_kind: dict
    messages_by_kind: dict
    seconds_by_kind: dict
    busy_s: float
    utilization: float
    makespan_s: float

    def to_dict(self) -> dict:
        return {
            "bytes": dict(self.bytes_by_kind),
            "messages": dict(self.messages_by_kind),
            "seconds": dict(self.seconds_by_kind),
            "busy_s": self.busy_s,
            "utilization": self.utilization,
            "makespan_s": self.makespan_s,
        }


class NetLink:
    """The modeled interconnect between the ingest node and the shards."""

    __slots__ = ("spec", "env", "link", "_tracer", "_bytes", "_messages",
                 "_seconds")

    def __init__(self, spec: Optional[NetLinkSpec] = None,
                 tracer: Tracer = NULL_TRACER):
        self.spec = spec if spec is not None else NetLinkSpec()
        if self.spec.bandwidth_bytes_per_s <= 0:
            raise ConfigError("link bandwidth must be positive")
        if self.spec.latency_s < 0 or self.spec.header_bytes < 0:
            raise ConfigError("link latency/header must be non-negative")
        if self.spec.links < 1:
            raise ConfigError("need at least one link lane")
        self.env = Environment()
        self.link = Resource(self.env, capacity=self.spec.links,
                             name="netlink")
        self._tracer = tracer
        tracer.bind(self.env)
        self._bytes = {kind: 0 for kind in NET_KINDS}
        self._messages = {kind: 0 for kind in NET_KINDS}
        self._seconds = {kind: 0.0 for kind in NET_KINDS}

    def cost_s(self, nbytes: int, messages: int = 1) -> float:
        """Modeled transfer time for ``nbytes`` over ``messages`` frames."""
        spec = self.spec
        wire_bytes = nbytes + messages * spec.header_bytes
        return messages * spec.latency_s \
            + wire_bytes / spec.bandwidth_bytes_per_s

    def charge(self, kind: str, nbytes: int, messages: int = 1) -> None:
        """Queue one transfer of ``nbytes`` under traffic class ``kind``."""
        if kind not in self._bytes:
            raise ConfigError(
                f"unknown net traffic kind {kind!r}; one of {NET_KINDS}")
        if nbytes < 0 or messages < 1:
            raise ConfigError("invalid net charge")
        self._bytes[kind] += int(nbytes)
        self._messages[kind] += int(messages)
        cost = self.cost_s(nbytes, messages)
        self._seconds[kind] += cost
        self.env.process(self._transfer(kind, cost))

    def _transfer(self, kind: str, cost: float):
        with self.link.request() as request:
            yield request
            with self._tracer.span(kind, resource=TRACK_NET):
                yield self.env.timeout(cost)

    def finish(self) -> NetReport:
        """Drain queued transfers and report link occupancy."""
        self.env.run()
        monitor = self.link.monitor
        return NetReport(
            bytes_by_kind=dict(self._bytes),
            messages_by_kind=dict(self._messages),
            seconds_by_kind=dict(self._seconds),
            busy_s=monitor.busy_time(),
            utilization=monitor.utilization(),
            makespan_s=self.env.now,
        )
