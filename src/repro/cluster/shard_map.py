"""Fingerprint-prefix shard map for the simulated reduction cluster.

SEDD-style hash-space partitioning: the dedup bin space (the
``256**prefix_bytes`` bins :func:`repro.dedup.index_base.decompose`
derives) is divided over N nodes by a total bin→shard table.  Because a
fingerprint's bin is a pure function of its first ``prefix_bytes``
bytes, two copies of the same content always route to the same shard —
per-bin dedup state is preserved exactly under any partitioning, which
is what makes the merged N-shard report equal the 1-node oracle
(DESIGN.md §14).

Three assignments are built in:

``range``
    Contiguous bin blocks (SEDD's hash-range split) — cache-friendly,
    but a workload concentrated in one prefix region lands on one node.
``interleave``
    ``bin % nodes`` — robust to contiguous hot regions.
``balanced``
    Greedy LPT over observed per-bin loads: heaviest bin first onto the
    least-loaded shard, deterministic tie-breaks (lowest shard id, then
    lowest bin id).

:meth:`ShardMap.rebalance` is the between-epochs skew repair: given
observed per-bin loads it greedily moves the largest bin that strictly
shrinks the fullest→emptiest spread, and reports the move list so the
caller can charge the migration bytes through the NetLink.  The table
stays a total function throughout — every bin resides on exactly one
shard at all times.
"""

from __future__ import annotations

import heapq
from typing import NamedTuple, Optional, Sequence, Union

import numpy as np

from repro.errors import ConfigError

__all__ = ["ASSIGNMENTS", "BinMove", "RebalanceResult", "ShardMap"]

#: Registered assignment policies (CLI / config surface).
ASSIGNMENTS = ("range", "interleave", "balanced")


class BinMove(NamedTuple):
    """One bin migration decided by :meth:`ShardMap.rebalance`."""

    bin_id: int
    src: int
    dst: int
    load: int


class RebalanceResult(NamedTuple):
    """Outcome of one rebalance pass."""

    moves: tuple[BinMove, ...]
    moved_bins: int
    #: Total load (bytes, in the router's accounting) that migrated.
    moved_load: int
    imbalance_before: float
    imbalance_after: float


def _imbalance(shard_loads: np.ndarray) -> float:
    """Max-over-mean shard load (1.0 = perfectly balanced)."""
    total = int(shard_loads.sum())
    if total == 0:
        return 1.0
    mean = total / len(shard_loads)
    return float(shard_loads.max()) / mean


class ShardMap:
    """Total bin→shard mapping over ``nodes`` reduction nodes."""

    __slots__ = ("nodes", "prefix_bytes", "n_bins", "assignment", "table")

    def __init__(self, nodes: int, prefix_bytes: int = 2,
                 assignment: str = "range",
                 loads: Optional[Union[Sequence[int], np.ndarray]] = None):
        if nodes < 1:
            raise ConfigError(f"need at least one node, got {nodes}")
        if prefix_bytes not in (1, 2, 3):
            raise ConfigError(
                f"unsupported shard prefix width {prefix_bytes}")
        if assignment not in ASSIGNMENTS:
            raise ConfigError(
                f"unknown shard assignment {assignment!r}; "
                f"pick one of {ASSIGNMENTS}")
        self.nodes = int(nodes)
        self.prefix_bytes = int(prefix_bytes)
        self.n_bins = 256 ** self.prefix_bytes
        if self.nodes > self.n_bins:
            raise ConfigError(
                f"{nodes} nodes exceed the {self.n_bins}-bin space")
        self.assignment = assignment
        if assignment == "range":
            bins = np.arange(self.n_bins, dtype=np.int64)
            self.table = (bins * self.nodes) // self.n_bins
        elif assignment == "interleave":
            self.table = np.arange(self.n_bins, dtype=np.int64) % self.nodes
        else:
            self.table = self._balanced(self._check_loads(loads))

    # -- assignment ----------------------------------------------------------

    def _check_loads(self, loads) -> np.ndarray:
        if loads is None:
            return np.ones(self.n_bins, dtype=np.int64)
        arr = np.asarray(loads, dtype=np.int64)
        if arr.shape != (self.n_bins,):
            raise ConfigError(
                f"per-bin loads must have shape ({self.n_bins},), "
                f"got {arr.shape}")
        if arr.size and int(arr.min()) < 0:
            raise ConfigError("per-bin loads must be non-negative")
        return arr

    def _balanced(self, loads: np.ndarray) -> np.ndarray:
        # LPT greedy: heaviest bin first onto the least-loaded shard.
        # The heap keys on (total, shard id) and the bin order breaks
        # load ties by bin id, so the table is deterministic.
        order = np.lexsort((np.arange(self.n_bins), -loads))
        heap = [(0, shard) for shard in range(self.nodes)]
        table = np.empty(self.n_bins, dtype=np.int64)
        load_list = loads.tolist()
        for bin_id in order.tolist():
            total, shard = heapq.heappop(heap)
            table[bin_id] = shard
            heapq.heappush(heap, (total + load_list[bin_id], shard))
        return table

    # -- queries -------------------------------------------------------------

    def shard_of(self, bin_id: int) -> int:
        """The shard holding ``bin_id``."""
        if not 0 <= bin_id < self.n_bins:
            raise ConfigError(f"bin {bin_id} outside [0, {self.n_bins})")
        return int(self.table[bin_id])

    def bins_of(self, shard: int) -> np.ndarray:
        """All bins resident on ``shard`` (ascending)."""
        if not 0 <= shard < self.nodes:
            raise ConfigError(f"shard {shard} outside [0, {self.nodes})")
        return np.flatnonzero(self.table == shard)

    def counts(self) -> list[int]:
        """Bins per shard."""
        return np.bincount(self.table, minlength=self.nodes).tolist()

    def shard_loads(self, loads) -> np.ndarray:
        """Per-shard totals of the given per-bin loads."""
        arr = self._check_loads(loads).astype(np.float64)
        totals = np.bincount(self.table, weights=arr,
                             minlength=self.nodes)
        return totals.astype(np.int64)

    def imbalance(self, loads) -> float:
        """Max-over-mean shard load under the current table."""
        return _imbalance(self.shard_loads(loads))

    # -- skew repair ---------------------------------------------------------

    def rebalance(self, loads,
                  max_moves: Optional[int] = None) -> RebalanceResult:
        """Greedy skew repair against observed per-bin ``loads``.

        Repeatedly moves, from the fullest shard to the emptiest, the
        largest bin whose load is strictly under half the spread — the
        condition that guarantees each move shrinks the sum of squared
        shard loads, so the pass terminates.  The table is updated in
        place and remains total (residency exactly once); the move list
        lets the caller charge migration traffic through the NetLink.
        """
        arr = self._check_loads(loads)
        shard_loads = self.shard_loads(arr)
        before = _imbalance(shard_loads)
        budget = self.n_bins if max_moves is None else int(max_moves)
        moves: list[BinMove] = []
        while len(moves) < budget:
            src = int(shard_loads.argmax())
            dst = int(shard_loads.argmin())
            gap = int(shard_loads[src]) - int(shard_loads[dst])
            if gap <= 0:
                break
            src_bins = np.flatnonzero(self.table == src)
            bin_loads = arr[src_bins]
            movable = src_bins[(bin_loads * 2 < gap) & (bin_loads > 0)]
            if movable.size == 0:
                break
            # argmax returns the first maximum — lowest bin id on ties.
            bin_id = int(movable[arr[movable].argmax()])
            load = int(arr[bin_id])
            self.table[bin_id] = dst
            shard_loads[src] -= load
            shard_loads[dst] += load
            moves.append(BinMove(bin_id, src, dst, load))
        return RebalanceResult(
            moves=tuple(moves),
            moved_bins=len(moves),
            moved_load=sum(move.load for move in moves),
            imbalance_before=before,
            imbalance_after=_imbalance(shard_loads))
