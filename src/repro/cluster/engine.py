"""The N-shard cluster reduction engine with a deterministic merge.

The engine plays the ingest node: it draws windows from a seeded
:class:`~repro.workload.vdbench.VdbenchStream`, fingerprints them when
running in payload mode (fingerprinting happens *before* routing — the
bin prefix is the routing key), splits each window across shards with
the mask-based router, charges the dispatch bytes to the NetLink, and
hands the sub-windows to the chosen executor.  At end of stream it
collects the per-shard reports in fixed shard-id order, charges the
flush (destage) traffic from those totals — again in shard order —
and folds everything into one merged report.

The merged report is built only from (a) per-shard report dicts that
are identical whichever process produced them and (b) parent-side
router/NetLink accounting, folded in fixed shard order.  Its canonical
JSON serialization is therefore byte-identical across executor
choices; :meth:`ClusterResult.digest` pins that as a sha256.  The
``aggregate`` sub-report (chunk/byte/counter sums) is additionally
invariant across *node counts* — the equivalence suite checks it
against the 1-node oracle (DESIGN.md §14).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import NamedTuple, Optional

from repro.chunkbatch import ChunkBatch
from repro.cluster.executor import EXECUTORS, make_executor
from repro.cluster.netlink import NetLink, NetLinkSpec, NetReport
from repro.cluster.router import ClusterRouter
from repro.cluster.shard_map import ASSIGNMENTS, RebalanceResult, ShardMap
from repro.cluster.shardwork import ShardSpec
from repro.dedup.hashing import PayloadHashMemo, fingerprint_window
from repro.errors import ConfigError
from repro.obs.stages import (
    DEDUP_COUNTER_KEYS,
    STAGE_NET_DISPATCH,
    STAGE_NET_FLUSH,
    STAGE_NET_REBALANCE,
)
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.workload.vdbench import VdbenchStream

__all__ = ["ClusterConfig", "ClusterEngine", "ClusterResult",
           "DISPATCH_DESCRIPTOR_BYTES"]

#: Routing metadata per dispatched chunk: 20-byte fingerprint plus the
#: offset/size/ratio descriptor triple (3 × 8 bytes).
DISPATCH_DESCRIPTOR_BYTES = 44

#: Per-entry migration cost of a rebalance move (fingerprint plus bin
#: bookkeeping), charged on top of the moved payload bytes.
REBALANCE_ENTRY_BYTES = 48


@dataclass(frozen=True)
class ClusterConfig:
    """One cluster run: workload, sharding, and executor choice."""

    nodes: int = 4
    prefix_bytes: int = 2
    assignment: str = "range"
    executor: str = "serial"
    chunks: int = 4096
    window: int = 64
    seed: int = 1234
    dedup_ratio: float = 2.0
    comp_ratio: float = 2.0
    chunk_size: int = 4096
    locality: float = 0.5
    payload: bool = False
    bin_buffer_capacity: int = 64
    netlink: NetLinkSpec = NetLinkSpec()

    def __post_init__(self):
        if self.chunks < 1:
            raise ConfigError("need at least one chunk")
        if self.window < 1:
            raise ConfigError(f"invalid window size {self.window}")
        if self.executor not in EXECUTORS:
            raise ConfigError(
                f"unknown executor {self.executor!r}; "
                f"pick one of {EXECUTORS}")
        if self.assignment not in ASSIGNMENTS:
            raise ConfigError(
                f"unknown shard assignment {self.assignment!r}")

    def shard_spec(self) -> ShardSpec:
        return ShardSpec(prefix_bytes=self.prefix_bytes,
                         bin_buffer_capacity=self.bin_buffer_capacity)


class ClusterResult(NamedTuple):
    """Merged cluster report plus its provenance."""

    merged: dict
    shard_reports: list
    net: NetReport

    def digest(self) -> str:
        """sha256 of the canonical merged-report JSON."""
        return hashlib.sha256(self.to_json().encode("ascii")).hexdigest()

    def to_json(self) -> str:
        """Canonical (sorted-key, compact) merged-report serialization."""
        return json.dumps(self.merged, sort_keys=True,
                          separators=(",", ":"))


class ClusterEngine:
    """Ingest-side orchestrator over N per-shard reduction batteries."""

    def __init__(self, config: ClusterConfig,
                 shard_map: Optional[ShardMap] = None,
                 tracer: Tracer = NULL_TRACER):
        self.config = config
        if shard_map is None:
            shard_map = ShardMap(config.nodes, config.prefix_bytes,
                                 config.assignment)
        elif (shard_map.nodes != config.nodes
              or shard_map.prefix_bytes != config.prefix_bytes):
            raise ConfigError("shard map does not match the config")
        self.shard_map = shard_map
        self.router = ClusterRouter(shard_map)
        self.netlink = NetLink(config.netlink, tracer=tracer)

    # -- the run -------------------------------------------------------------

    def _stream(self) -> VdbenchStream:
        cfg = self.config
        return VdbenchStream(dedup_ratio=cfg.dedup_ratio,
                             comp_ratio=cfg.comp_ratio,
                             chunk_size=cfg.chunk_size,
                             seed=cfg.seed,
                             payload=cfg.payload,
                             locality=cfg.locality)

    def run(self) -> ClusterResult:
        cfg = self.config
        executor = make_executor(cfg.executor, cfg.nodes,
                                 cfg.shard_spec())
        stream = self._stream()
        hash_memo = PayloadHashMemo() if cfg.payload else None
        try:
            remaining = cfg.chunks
            while remaining > 0:
                batch = stream.next_batch(min(cfg.window, remaining))
                remaining -= len(batch)
                batch = self._fingerprinted(batch, hash_memo)
                for routed in self.router.split(batch):
                    self.netlink.charge(
                        STAGE_NET_DISPATCH,
                        len(routed) * DISPATCH_DESCRIPTOR_BYTES
                        + routed.payload_bytes())
                    executor.submit(routed)
            shard_reports = executor.finish()
        finally:
            executor.close()
        # Flush traffic is charged at end of run from the per-shard
        # destage totals, in fixed shard order: the charge sequence —
        # and therefore the NetReport — never depends on executor
        # scheduling.
        for report in shard_reports:
            destage = report["destage"]
            if destage["batches"]:
                self.netlink.charge(STAGE_NET_FLUSH,
                                    destage["payload_bytes"],
                                    messages=destage["batches"])
        net = self.netlink.finish()
        merged = self._merge(shard_reports, net)
        return ClusterResult(merged=merged, shard_reports=shard_reports,
                             net=net)

    def _fingerprinted(self, batch: ChunkBatch,
                       hash_memo: Optional[PayloadHashMemo]) -> ChunkBatch:
        """Fingerprint a payload-mode window before routing.

        Descriptor-mode windows already carry synthetic fingerprints;
        payload windows are hashed on the ingest node (the bin prefix
        *is* the routing key) through the shared batched hashing path.
        """
        if not self.config.payload:
            return batch
        chunks = batch.materialize()
        fingerprint_window(chunks, memo=hash_memo)
        return ChunkBatch(batch.offsets, batch.sizes, batch.payloads,
                          [chunk.fingerprint for chunk in chunks],
                          batch.comp_ratios, validate=False)

    # -- skew repair ---------------------------------------------------------

    def plan_rebalance(self) -> RebalanceResult:
        """Between-epochs rebalance from this run's observed loads.

        Updates the shard map in place (a subsequent engine built on
        the same map routes with the repaired table) and charges the
        migration traffic — moved payload bytes plus per-entry index
        bookkeeping — to the NetLink.
        """
        result = self.shard_map.rebalance(self.router.bin_loads())
        if result.moved_bins:
            self.netlink.charge(
                STAGE_NET_REBALANCE,
                result.moved_load
                + result.moved_bins * REBALANCE_ENTRY_BYTES,
                messages=result.moved_bins)
        return result

    # -- deterministic merge -------------------------------------------------

    def _merge(self, shard_reports: list, net: NetReport) -> dict:
        cfg = self.config
        counters = {key: 0 for key in DEDUP_COUNTER_KEYS}
        for report in shard_reports:
            for key in DEDUP_COUNTER_KEYS:
                counters[key] += report["counters"][key]

        def total(*path: str) -> int:
            out = 0
            for report in shard_reports:
                value = report
                for name in path:
                    value = value[name]
                out += value
            return out

        # Everything under "aggregate" is invariant across node counts
        # (per-bin state is preserved exactly under sharding); the
        # "cluster" section is topology-specific but still identical
        # across executor choices.
        return {
            "aggregate": {
                "chunks": total("chunks"),
                "logical_bytes": total("logical_bytes"),
                "stored_bytes": total("stored_bytes"),
                "unique_chunks": total("unique_chunks"),
                "counters": counters,
                "compressed": {
                    "chunks": total("compressed", "chunks"),
                    "bytes_in": total("compressed", "bytes_in"),
                    "bytes_out": total("compressed", "bytes_out"),
                },
                "destage": {
                    "batches": total("destage", "batches"),
                    "chunks": total("destage", "chunks"),
                    "payload_bytes": total("destage", "payload_bytes"),
                },
            },
            "cluster": {
                "nodes": cfg.nodes,
                "prefix_bytes": cfg.prefix_bytes,
                "assignment": cfg.assignment,
                "seed": cfg.seed,
                "payload": cfg.payload,
                "bins_per_shard": self.shard_map.counts(),
                "routing": self.router.skew(),
                "net": net.to_dict(),
                "per_shard": [
                    {"shard": report["shard"],
                     "chunks": report["chunks"],
                     "unique_chunks": report["unique_chunks"],
                     "stored_bytes": report["stored_bytes"]}
                    for report in shard_reports
                ],
            },
        }
