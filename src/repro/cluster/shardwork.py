"""Per-shard reduction battery: the worker payload for both executors.

One :class:`ShardWorker` owns one node's slice of the cluster — a
:class:`~repro.dedup.engine.DedupEngine` over the bins its shard holds
and a :class:`~repro.compression.parallel_cpu.CpuCompressor` — and
processes the router's sub-windows in arrival order.  The same object
runs in-process under the serial executor and inside a child process
under the multiprocessing executor, so everything it touches (its
input :class:`~repro.cluster.router.RoutedWindow` columns, its final
report dict) is picklable plain data.

Two deliberate configuration choices keep the merged N-shard report
equal to the 1-node oracle (DESIGN.md §14):

* ``bin_buffer_total=None`` — a *global* staging budget flushes the
  fullest bin, coupling one bin's flush timing to traffic in every
  other bin; under sharding that coupling would depend on the node
  count.  Per-bin capacity flushes are partition-invariant.
* no GPU index — the batched GPU probe's race window admits
  ``race_duplicates`` whose count depends on batch composition, which
  sharding changes.

Each window is compressed up front with the batched codec dispatch
(:meth:`compress_window` — duplicates replay the result memo at memo
cost), then indexed and committed strictly per chunk in stream order,
so every dedup verdict depends only on prior same-bin commits — the
property routing preserves under any node count.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.compression.parallel_cpu import CpuCompressor
from repro.cluster.router import RoutedWindow
from repro.dedup.engine import DedupEngine, DestageBatch

__all__ = ["ShardSpec", "ShardWorker"]


class ShardSpec(NamedTuple):
    """Picklable per-shard engine configuration."""

    prefix_bytes: int = 2
    bin_buffer_capacity: int = 64
    btree_min_degree: int = 16


class ShardWorker:
    """One node's dedup/compression battery."""

    __slots__ = ("shard_id", "spec", "_engine", "_compressor", "chunks",
                 "logical_bytes", "stored_bytes", "destage_batches",
                 "destage_chunks", "destage_bytes", "_finished")

    def __init__(self, shard_id: int, spec: ShardSpec = ShardSpec()):
        self.shard_id = shard_id
        self.spec = spec
        self._engine = DedupEngine(
            prefix_bytes=spec.prefix_bytes,
            btree_min_degree=spec.btree_min_degree,
            bin_buffer_capacity=spec.bin_buffer_capacity,
            bin_buffer_total=None)
        self._compressor = CpuCompressor()
        self.chunks = 0
        self.logical_bytes = 0
        self.stored_bytes = 0
        self.destage_batches = 0
        self.destage_chunks = 0
        self.destage_bytes = 0
        self._finished = False

    # -- processing ----------------------------------------------------------

    def process(self, window: RoutedWindow) -> None:
        """Run one routed sub-window through the shard's battery."""
        chunks = window.chunks()
        results = self._compressor.compress_window(chunks)
        engine = self._engine
        for chunk, result in zip(chunks, results):
            outcome = engine.cpu_index(chunk)
            if outcome.duplicate:
                engine.commit_duplicate(chunk)
            else:
                _cycles, batch, unique = engine.commit_unique(
                    chunk, result.blob)
                if unique:
                    self.stored_bytes += chunk.compressed_size
                if batch is not None:
                    self._note_destage(batch)
            self.chunks += 1
            self.logical_bytes += chunk.size

    def _note_destage(self, batch: DestageBatch) -> None:
        self.destage_batches += 1
        self.destage_chunks += batch.chunk_count
        self.destage_bytes += batch.payload_bytes

    # -- reporting -----------------------------------------------------------

    def finish(self) -> dict:
        """Drain partially filled bins and return the shard report."""
        if not self._finished:
            for batch in self._engine.drain():
                self._note_destage(batch)
            self._finished = True
        return self.report()

    def report(self) -> dict:
        """Plain-data shard report (ints only; picklable, mergeable)."""
        compressor = self._compressor
        return {
            "shard": self.shard_id,
            "chunks": self.chunks,
            "logical_bytes": self.logical_bytes,
            "stored_bytes": self.stored_bytes,
            "unique_chunks": self._engine.metadata.unique_chunks,
            "counters": dict(self._engine.counters),
            "compressed": {
                "chunks": compressor.chunks_compressed,
                "bytes_in": compressor.bytes_in,
                "bytes_out": compressor.bytes_out,
            },
            "destage": {
                "batches": self.destage_batches,
                "chunks": self.destage_chunks,
                "payload_bytes": self.destage_bytes,
            },
        }
