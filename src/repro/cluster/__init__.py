"""Simulated cluster sharding of the inline reduction engine.

The paper parallelizes reduction *within* one node; this package adds
the scale axis it could not model — N reduction nodes partitioning one
fingerprint space by bin prefix (:mod:`repro.cluster.shard_map`),
window routing with numpy masks (:mod:`repro.cluster.router`), modeled
cross-node traffic (:mod:`repro.cluster.netlink`), per-shard batteries
(:mod:`repro.cluster.shardwork`), serial and multiprocessing executors
(:mod:`repro.cluster.executor`), and a deterministic merged report
(:mod:`repro.cluster.engine`).  See DESIGN.md §14.

Cross-shard access discipline: outside this package, nothing may reach
a shard's private index or worker state directly — all cross-shard
traffic goes through the router and the NetLink (REP801 patrols this).
"""

from repro.cluster.engine import (
    ClusterConfig,
    ClusterEngine,
    ClusterResult,
)
from repro.cluster.executor import EXECUTORS, MpExecutor, SerialExecutor
from repro.cluster.netlink import NetLink, NetLinkSpec, NetReport
from repro.cluster.router import ClusterRouter, RoutedWindow
from repro.cluster.shard_map import (
    ASSIGNMENTS,
    BinMove,
    RebalanceResult,
    ShardMap,
)
from repro.cluster.shardwork import ShardSpec, ShardWorker

__all__ = [
    "ASSIGNMENTS",
    "BinMove",
    "ClusterConfig",
    "ClusterEngine",
    "ClusterResult",
    "ClusterRouter",
    "EXECUTORS",
    "MpExecutor",
    "NetLink",
    "NetLinkSpec",
    "NetReport",
    "RebalanceResult",
    "RoutedWindow",
    "SerialExecutor",
    "ShardMap",
    "ShardSpec",
    "ShardWorker",
]
