"""Mask-based window routing from the ingest node to the shards.

The router is the only component that turns a :class:`ChunkBatch`
window into per-shard work, and it does so with numpy masks over the
whole window — never a per-chunk Python loop (REP504 patrols this
module).  Bin ids are derived for the entire window at once by folding
the first ``prefix_bytes`` columns of the stacked fingerprint bytes —
the same big-endian ``bin_id`` :func:`repro.dedup.index_base.decompose`
produces per fingerprint (this module is the audited vectorized
counterpart of that single decomposition site).

Routing is order-preserving within a window: each shard's sub-window
keeps the chunks in stream order, so per-bin processing order — and
therefore every dedup verdict — is independent of the node count
(DESIGN.md §14).  The router also keeps the per-shard and per-bin load
accounting the skew report and :meth:`ShardMap.rebalance` consume.
"""

from __future__ import annotations

import numpy as np

from repro.chunkbatch import ChunkBatch
from repro.cluster.shard_map import ShardMap
from repro.errors import ConfigError
from repro.types import Chunk, FINGERPRINT_BYTES

__all__ = ["ClusterRouter", "RoutedWindow"]


class RoutedWindow:
    """One shard's slice of a routed window (pickle-friendly columns)."""

    __slots__ = ("shard", "offsets", "sizes", "payloads", "fingerprints",
                 "comp_ratios")

    def __init__(self, shard: int, offsets: np.ndarray, sizes: np.ndarray,
                 payloads: list, fingerprints: list, comp_ratios: list):
        self.shard = shard
        self.offsets = offsets
        self.sizes = sizes
        self.payloads = payloads
        self.fingerprints = fingerprints
        self.comp_ratios = comp_ratios

    def __len__(self) -> int:
        return len(self.sizes)

    def payload_bytes(self) -> int:
        """Bytes of payload travelling with this sub-window."""
        if not self.payloads or self.payloads[0] is None:
            return 0
        return int(self.sizes.sum())

    def chunks(self) -> list[Chunk]:
        """Materialized chunks, in preserved stream order.

        The columns were validated when the source window was built, so
        the batch constructor skips re-validation.
        """
        return ChunkBatch(self.offsets, self.sizes, self.payloads,
                          self.fingerprints, self.comp_ratios,
                          validate=False).materialize()

    def __getstate__(self):
        return tuple(getattr(self, name) for name in self.__slots__)

    def __setstate__(self, state):
        for name, value in zip(self.__slots__, state):
            setattr(self, name, value)


class ClusterRouter:
    """Splits :class:`ChunkBatch` windows across shards by bin prefix."""

    __slots__ = ("shard_map", "windows", "routed_chunks", "routed_bytes",
                 "_bin_bytes")

    def __init__(self, shard_map: ShardMap):
        self.shard_map = shard_map
        self.windows = 0
        self.routed_chunks = np.zeros(shard_map.nodes, dtype=np.int64)
        self.routed_bytes = np.zeros(shard_map.nodes, dtype=np.int64)
        self._bin_bytes = np.zeros(shard_map.n_bins, dtype=np.float64)

    # -- vectorized bin derivation ------------------------------------------

    def bin_ids(self, fingerprints) -> np.ndarray:
        """Bin ids for a full fingerprint column, one numpy pass.

        Equals ``decompose(fp, prefix_bytes).bin_id`` element-wise: the
        big-endian fold of each fingerprint's first ``prefix_bytes``
        bytes.
        """
        n = len(fingerprints)
        if n == 0:
            return np.empty(0, dtype=np.int64)
        try:
            stacked = b"".join(fingerprints)
        except TypeError:
            raise ConfigError(
                "routing needs a fully populated fingerprint column "
                "(payload-mode windows must be fingerprinted first)")
        if len(stacked) != n * FINGERPRINT_BYTES:
            raise ConfigError(
                f"fingerprints must be {FINGERPRINT_BYTES} bytes each")
        matrix = np.frombuffer(stacked, dtype=np.uint8)
        matrix = matrix.reshape(n, FINGERPRINT_BYTES)
        bins = matrix[:, 0].astype(np.int64)
        for column in range(1, self.shard_map.prefix_bytes):
            bins = (bins << 8) | matrix[:, column]
        return bins

    # -- window splitting ----------------------------------------------------

    def split(self, batch: ChunkBatch) -> list[RoutedWindow]:
        """Per-shard sub-windows of ``batch``, in ascending shard order.

        Empty shards are skipped; within each sub-window chunk order is
        the source window order.
        """
        bins = self.bin_ids(batch.fingerprints)
        shard_ids = self.shard_map.table[bins]
        sizes = batch.sizes
        self.windows += 1
        self._bin_bytes += np.bincount(
            bins, weights=sizes.astype(np.float64),
            minlength=self.shard_map.n_bins)
        n = len(batch)
        payload_col = np.empty(n, dtype=object)
        payload_col[:] = batch.payloads
        fp_col = np.empty(n, dtype=object)
        fp_col[:] = batch.fingerprints
        ratio_col = np.empty(n, dtype=object)
        ratio_col[:] = batch.comp_ratios
        out: list[RoutedWindow] = []
        for shard in range(self.shard_map.nodes):
            index = np.flatnonzero(shard_ids == shard)
            if index.size == 0:
                continue
            shard_sizes = sizes[index]
            out.append(RoutedWindow(
                shard, batch.offsets[index], shard_sizes,
                payload_col[index].tolist(), fp_col[index].tolist(),
                ratio_col[index].tolist()))
            self.routed_chunks[shard] += index.size
            self.routed_bytes[shard] += int(shard_sizes.sum())
        return out

    # -- load accounting -----------------------------------------------------

    def bin_loads(self) -> np.ndarray:
        """Observed per-bin routed bytes (rebalance input)."""
        return self._bin_bytes.astype(np.int64)

    def skew(self) -> dict:
        """Routing balance summary for the merged report."""
        total = int(self.routed_chunks.sum())
        nodes = self.shard_map.nodes
        mean = total / nodes if total else 0.0
        peak = int(self.routed_chunks.max()) if total else 0
        return {
            "windows": self.windows,
            "per_shard_chunks": self.routed_chunks.tolist(),
            "per_shard_bytes": self.routed_bytes.tolist(),
            "max_over_mean": (peak / mean) if mean else 1.0,
        }
