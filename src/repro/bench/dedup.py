"""Dedup index-plane benchmark (``repro bench dedup``).

The engine bench watches the timed substrate and the dataplane bench
watches the codec loops; this module watches the *index plane* — the
functional structures every chunk's fingerprint passes through: the
:class:`~repro.dedup.bin_buffer.BinBuffer` probe, the
:class:`~repro.dedup.bins.BinTable` bin-tree walk, the GPU linear-bin
lookup kernel (batch build + broadcast compare + result recording), and
the flush path that installs a whole bin into the tree and the GPU bins
at once.  The fast-path PR that introduced the fingerprint decomposition
cache and the broadcast kernel is held to the same two promises as its
predecessors:

1. **Identity** — the pinned golden E4 report fields and the canonical
   report sha256 digests are unchanged across all four integration
   modes, and the vectorized kernel agrees slot-for-slot with the SIMT
   oracle.  Always checked; timing-free.
2. **Speed** — the aggregate (geometric-mean) speedup over the four
   index microbenchmarks is >= 2x the pinned seed baselines.  Wall-clock
   thresholds are only meaningful on the reference container, so the
   gate in ``benchmarks/test_p5_dedup.py`` enforces them behind
   ``REPRO_PERF_TIMING=1``; timings are always measured and written to
   ``BENCH_dedup.json``.

Scenarios (``--quick`` trims repeats and skips the full-size E4 field
re-run; the report-digest identity check still runs):

* **buffer_probe** — hit/miss probe mix against a staged bin buffer;
* **tree_probe** — hit/miss probe mix against populated bin trees;
* **gpu_batch_lookup** — batch build + kernel execute + result record
  over a populated GPU bin index (the paper's per-batch launch);
* **flush_install** — whole-bin flush events applied to the bin tree
  and the GPU bins, including the capacity-overflow eviction path;
* **golden** — report digests, E4 fields, SIMT-vs-vectorized slots.

The baseline constants below are *wall-clock measurements from one
specific machine at the pre-fast-path commit*.  Speedups against them
are meaningful on that class of machine only; the identity checks are
meaningful everywhere.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Optional

from repro.bench.common import (
    attach_profile,
    attach_trace,
    best_of,
    fold_fields_ok,
    rate_entry,
    render_identity_lines,
    render_rate_lines,
    render_tail,
    set_aggregate,
    start_profile,
    write_results,
)
from repro.dedup.bin_buffer import BinBuffer, FlushEvent
from repro.dedup.bins import BinTable
from repro.dedup.engine import DedupEngine, _StagedInfo
from repro.dedup.gpu_index import GpuBinIndex
from repro.dedup.index_base import decompose, decomposition_cache
from repro.dedup.replacement import RandomReplacement

#: Pre-fast-path index-plane rates (reference container, best-of-N).
#: Keys are scenario names; values are the scenario's ops/second.
BASELINE_RATES = {
    "buffer_probe": 1_810_701.0,
    "tree_probe": 670_247.0,
    "gpu_batch_lookup": 212_333.0,
    "flush_install": 271_799.0,
}

#: The PR's acceptance bar: geometric-mean speedup over the four index
#: microbenchmarks on the reference machine.
REQUIRED_INDEX_SPEEDUP = 2.0

#: Chunk count of the pinned per-mode report digests (small enough for
#: CI; the full-size golden E4 field check runs without ``--quick``).
GOLDEN_REPORT_CHUNKS = 2048

#: sha256 of the canonical (sorted-key JSON) E4 report per integration
#: mode at ``GOLDEN_REPORT_CHUNKS``, captured at the pre-fast-path
#: commit.  The index fast path must reproduce every field bit-exactly.
GOLDEN_REPORT_SHA256: dict[str, str] = {
    "gpu_both":
        "c2d39bfff4814a3ad5310a3141d2a519002a7d27847a5ea2b7ea6fbd2a80ee4d",
    "gpu_dedup":
        "326788335d172ba6ab5f170f452ac9b367d05449b80b4eb745d3d7c1e8339151",
    "gpu_comp":
        "4f7000645b09a2a80fe852dcc81507951cd6832e20bbaf709e1cd4c64e920d53",
    "cpu_only":
        "f6f89d2c3fa942457f875e7ef346b7e85ea79482c6896c8b1cbfd9195455f809",
}


# -- deterministic fingerprint corpus ---------------------------------------

def make_fingerprints(count: int, salt: int = 0) -> list[bytes]:
    """``count`` deterministic 20-byte SHA-1-shaped fingerprints."""
    return [hashlib.sha1(f"{salt}:{i}".encode()).digest()
            for i in range(count)]


def make_bin_fingerprints(bin_id: int, count: int,
                          prefix_bytes: int = 2,
                          salt: int = 0) -> list[bytes]:
    """``count`` distinct fingerprints that all land in ``bin_id``."""
    prefix = bin_id.to_bytes(prefix_bytes, "big")
    return [prefix + hashlib.sha1(
        f"bin{bin_id}:{salt}:{i}".encode()).digest()[prefix_bytes:]
        for i in range(count)]


def _probe_mix(present: list[bytes], absent: list[bytes]) -> list[bytes]:
    """Alternating hit/miss probe sequence (worst case for caches that
    only help on hits)."""
    mixed: list[bytes] = []
    for hit, miss in zip(present, absent):
        mixed.append(hit)
        mixed.append(miss)
    return mixed


# -- scenarios --------------------------------------------------------------

def bench_buffer_probe(repeats: int = 5, staged: int = 4096,
                       passes: int = 4) -> dict:
    """Hit/miss probe mix against a staged bin buffer.

    The staged set is the decomposition cache's working set; repeats
    measure the warm path, which is the state a pipeline run is in for
    every probe after a fingerprint's first sighting.
    """
    present = make_fingerprints(staged, salt=1)
    absent = make_fingerprints(staged, salt=2)
    buffer = BinBuffer(prefix_bytes=2, per_bin_capacity=1 << 30)
    for i, fingerprint in enumerate(present):
        buffer.add(fingerprint, i)
    probes = _probe_mix(present, absent)

    def run() -> None:
        lookup = buffer.lookup
        for _ in range(passes):
            for fingerprint in probes:
                lookup(fingerprint)

    seconds = best_of(run, repeats)
    return rate_entry("buffer_probe", len(probes) * passes, seconds,
                      "probes_per_s", BASELINE_RATES)


def bench_tree_probe(repeats: int = 5, entries: int = 8192,
                     passes: int = 4) -> dict:
    """Hit/miss probe mix against populated bin trees.

    One probe resolves the same two questions the engine's CPU path
    asks per chunk — the bin depth (for the cycle charge) and the
    stored value — driven exactly the way ``DedupEngine.cpu_index``
    drives it (seed: separate ``bin_depth`` + ``lookup`` calls; now:
    one decomposition plus one ``probe_view``).
    """
    present = make_fingerprints(entries, salt=3)
    absent = make_fingerprints(entries // 2, salt=4)
    table = BinTable(prefix_bytes=2, min_degree=16)
    for i, fingerprint in enumerate(present):
        table.insert(fingerprint, i)
    probes = _probe_mix(present[:entries // 2], absent)

    def run() -> None:
        cache = decomposition_cache(table.prefix_bytes)
        probe = table.probe_view
        pb = table.prefix_bytes
        for _ in range(passes):
            for fingerprint in probes:
                try:
                    view = cache[fingerprint]
                except KeyError:
                    view = decompose(fingerprint, pb, cache)
                probe(view)

    seconds = best_of(run, repeats)
    return rate_entry("tree_probe", len(probes) * passes, seconds,
                      "probes_per_s", BASELINE_RATES)


def bench_gpu_batch_lookup(repeats: int = 5, stored: int = 8192,
                           batch: int = 4096, passes: int = 2) -> dict:
    """Batch build + kernel execute + result record, per launch.

    ``prefix_bytes=1`` concentrates the batch into 256 bins so each bin
    group carries many queries — the paper's linear-scan shape, and the
    shape where a broadcast compare pays off.
    """
    index = GpuBinIndex(prefix_bytes=1, bin_capacity=512,
                        policy=RandomReplacement(seed=11))
    for fingerprint in make_fingerprints(stored, salt=5):
        index.insert(fingerprint)
    present = make_fingerprints(batch // 2, salt=5)
    absent = make_fingerprints(batch // 2, salt=6)
    queries = _probe_mix(present, absent)

    def run() -> None:
        for _ in range(passes):
            kernel = index.make_kernel(queries)
            slots = kernel.execute()
            index.record_results(queries, slots)

    seconds = best_of(run, repeats)
    return rate_entry("gpu_batch_lookup", len(queries) * passes,
                      seconds, "queries_per_s", BASELINE_RATES)


def _flush_events(events: int, per_event: int,
                  prefix_bytes: int = 2) -> list[FlushEvent]:
    """Whole-bin flush events, each carrying ``per_event`` entries."""
    out = []
    for event_id in range(events):
        bin_id = (event_id * 257) % (256 ** prefix_bytes)
        entries = tuple(
            (fingerprint, _StagedInfo(size=4096, compressed_size=2048))
            for fingerprint in make_bin_fingerprints(
                bin_id, per_event, prefix_bytes=prefix_bytes,
                salt=event_id))
        out.append(FlushEvent(bin_id=bin_id, entries=entries))
    return out


def bench_flush_install(repeats: int = 5, events: int = 64,
                        per_event: int = 64) -> dict:
    """Whole-bin flushes applied to the bin tree + GPU bins.

    Half the events land in fresh, roomy GPU bins (pure install); the
    other half re-hit the same bins with ``bin_capacity`` exceeded, so
    the eviction path (seeded random replacement) is measured too.
    """
    fitting = _flush_events(events, per_event)
    # Same bins again: every entry now takes the capacity-overflow path.
    overflow = _flush_events(events, per_event)

    def run() -> None:
        engine = DedupEngine(
            prefix_bytes=2, btree_min_degree=16,
            gpu_index=GpuBinIndex(prefix_bytes=2, bin_capacity=64,
                                  policy=RandomReplacement(seed=13)))
        for event in fitting:
            engine._apply_flush(event)
        for event in overflow:
            engine._apply_flush(event)

    seconds = best_of(run, repeats)
    return rate_entry("flush_install",
                      2 * events * per_event, seconds, "entries_per_s",
                      BASELINE_RATES)


# -- identity ---------------------------------------------------------------

def report_digests(chunks: int = GOLDEN_REPORT_CHUNKS) -> dict[str, str]:
    """sha256 of the canonical JSON of every mode's pipeline report."""
    from repro.core.calibration import run_mode
    from repro.core.modes import IntegrationMode

    digests: dict[str, str] = {}
    for mode in IntegrationMode.all_modes():
        report = dataclasses.asdict(run_mode(mode, chunks))
        canonical = json.dumps(report, sort_keys=True)
        digests[mode.value] = hashlib.sha256(
            canonical.encode()).hexdigest()
    return digests


def check_golden_reports(chunks: int = GOLDEN_REPORT_CHUNKS) -> dict:
    """Compare per-mode report digests against the pinned goldens."""
    observed = report_digests(chunks)
    mismatches = {
        mode: {"observed": observed.get(mode), "golden": golden}
        for mode, golden in GOLDEN_REPORT_SHA256.items()
        if observed.get(mode) != golden}
    return {"chunks": chunks, "modes": len(observed),
            "fields_ok": not mismatches,
            **({"mismatches": mismatches} if mismatches else {})}


def check_kernel_equivalence(stored: int = 512, batch: int = 256) -> dict:
    """SIMT vs vectorized vs tiled slots on a shared-prefix corpus."""
    index = GpuBinIndex(prefix_bytes=1, bin_capacity=64,
                        policy=RandomReplacement(seed=17))
    for fingerprint in make_fingerprints(stored, salt=7):
        index.insert(fingerprint)
    queries = _probe_mix(make_fingerprints(batch // 2, salt=7),
                         make_fingerprints(batch // 2, salt=8))
    plain = list(index.make_kernel(queries).execute())
    simt = list(index.make_kernel(queries, use_simt=True).execute())
    tiled = list(index.make_kernel(queries, tiled=True).execute())
    return {"queries": len(queries),
            "fields_ok": plain == simt == tiled}


# -- driver -----------------------------------------------------------------

def run_dedup_bench(quick: bool = False, profile: bool = False,
                    out_path: Optional[str] = "BENCH_dedup.json",
                    trace_path: Optional[str] = None) -> dict:
    """Run all scenarios; write ``BENCH_dedup.json``; return the dict.

    ``quick`` trims repeats and skips the (slow) full-size E4 field
    re-run — the per-mode report-digest and kernel-equivalence checks
    still run, so CI keeps full identity coverage of the index plane.
    ``trace_path`` additionally runs one traced ``gpu_dedup`` pipeline
    (the index-heavy mode this bench's structures feed) and writes its
    Chrome trace there.
    """
    from repro.core.modes import IntegrationMode

    profiler = start_profile(profile)
    repeats = 2 if quick else 5
    results: dict[str, Any] = {
        "bench": "dedup-index-plane",
        "quick": quick,
        "buffer_probe": bench_buffer_probe(repeats=repeats),
        "tree_probe": bench_tree_probe(repeats=repeats),
        "gpu_batch_lookup": bench_gpu_batch_lookup(repeats=repeats),
        "flush_install": bench_flush_install(repeats=repeats),
        "golden_reports": check_golden_reports(),
        "kernel_equivalence": check_kernel_equivalence(),
    }
    if not quick:
        from repro.bench.dataplane import check_golden_e4
        results["golden_e4"] = check_golden_e4()
    fold_fields_ok(results, ("golden_reports", "kernel_equivalence",
                             "golden_e4"))
    set_aggregate(results, BASELINE_RATES, REQUIRED_INDEX_SPEEDUP)
    attach_profile(profiler, results)
    attach_trace(results, trace_path, IntegrationMode.GPU_DEDUP,
                 2048 if quick else 8192)
    write_results(results, out_path)
    return results


def render_dedup_bench(results: dict) -> str:
    """Human-readable summary of :func:`run_dedup_bench` output."""
    lines = []
    units = {"buffer_probe": "probes_per_s",
             "tree_probe": "probes_per_s",
             "gpu_batch_lookup": "queries_per_s",
             "flush_install": "entries_per_s"}
    render_rate_lines(results, units, lines)
    render_identity_lines(
        results, ("golden_reports", "kernel_equivalence", "golden_e4"),
        lines)
    return render_tail(results, lines)
