"""Shared bench-plane harness (baseline pinning, timing, plumbing).

Every perf plane (``dataplane``, ``dedup``, ``pipeline``, ``cluster``)
follows the same contract: scenarios measured best-of-N against pinned
seed baselines, a geometric-mean aggregate, identity checks that run
everywhere while wall-clock gates stay behind ``REPRO_PERF_TIMING=1``,
and ``--profile/--trace/--quick`` plumbing plus a committed
``BENCH_<plane>.json`` snapshot.  This module is the one copy of that
boilerplate; the plane modules keep only their scenarios, baselines and
goldens.

The helpers are shape-preserving: a plane refactored onto them emits
byte-identical ``BENCH_*.json`` entries (same keys, same values) as
the hand-rolled originals they replace.
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable, Iterable, Optional

__all__ = [
    "attach_profile",
    "attach_trace",
    "best_of",
    "fold_fields_ok",
    "geomean",
    "json_summary",
    "rate_entry",
    "render_identity_lines",
    "render_rate_lines",
    "render_tail",
    "scenario_rows",
    "speedup_suffix",
    "set_aggregate",
    "start_profile",
    "write_results",
]


# -- timing ------------------------------------------------------------------

def best_of(fn: Callable[[], Any], repeats: int) -> float:
    """Best wall-clock seconds of ``repeats`` calls to ``fn``."""
    best: Optional[float] = None
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best


def rate_entry(name: str, ops: int, seconds: float, unit: str,
               baselines: dict[str, float], *, scale: float = 1.0,
               ops_key: str = "ops",
               include_scenario: bool = True) -> dict:
    """One scenario's measured rate next to its pinned seed baseline.

    The emitted shape is what the ``bench all`` summary and the
    ``--json`` output key on: the measured ``<unit>`` rate beside
    ``baseline_<unit>`` and ``speedup`` whenever ``name`` has a pinned
    baseline.  ``scale`` converts ops/second into the reported unit
    (e.g. ``1e-6`` for bytes -> MB/s); ``ops_key`` names the work field
    (``ops``, ``bytes``, …).
    """
    rate = ops / seconds * scale
    entry: dict[str, Any] = {}
    if include_scenario:
        entry["scenario"] = name
    entry[ops_key] = ops
    entry["seconds"] = seconds
    entry[unit] = rate
    baseline = baselines.get(name)
    if baseline:
        entry[f"baseline_{unit}"] = baseline
        entry["speedup"] = rate / baseline
    return entry


# -- aggregation -------------------------------------------------------------

def geomean(values: Iterable[float]) -> float:
    """Geometric mean of a non-empty value sequence."""
    product = 1.0
    count = 0
    for value in values:
        product *= value
        count += 1
    return product ** (1.0 / count)


def set_aggregate(results: dict, scenarios: Iterable[str],
                  required: float) -> None:
    """Fold scenario speedups into ``aggregate_speedup`` (geomean).

    Only set when *every* named scenario carries a speedup — a partial
    aggregate would silently compare against a different baseline set.
    """
    names = list(scenarios)
    speedups = [results[name]["speedup"] for name in names
                if "speedup" in results[name]]
    if len(speedups) == len(names):
        results["aggregate_speedup"] = geomean(speedups)
        results["required_speedup"] = required


def fold_fields_ok(results: dict, keys: Iterable[str]) -> None:
    """Fold per-check ``fields_ok`` flags into the top-level one."""
    results["fields_ok"] = all(
        results[key]["fields_ok"] for key in keys if key in results)


# -- --profile / --trace / output plumbing -----------------------------------

def start_profile(profile: bool):
    """An enabled ``cProfile.Profile`` when profiling was requested."""
    if not profile:
        return None
    import cProfile
    profiler = cProfile.Profile()
    profiler.enable()
    return profiler


def attach_profile(profiler, results: dict) -> None:
    """Stop ``profiler`` and attach its top-25 cumulative table."""
    if profiler is None:
        return
    import io
    import pstats
    profiler.disable()
    stream = io.StringIO()
    pstats.Stats(profiler, stream=stream) \
        .sort_stats("cumulative").print_stats(25)
    results["profile_top"] = stream.getvalue()


def attach_trace(results: dict, trace_path: Optional[str], mode,
                 chunks: int) -> None:
    """Run one traced pipeline for ``mode`` and record the bundle."""
    if not trace_path:
        return
    from repro.bench.tracing import write_trace_bundle
    results["trace"] = write_trace_bundle(trace_path, mode, chunks)


def write_results(results: dict, out_path: Optional[str]) -> None:
    """Write the snapshot JSON and stamp ``written_to``."""
    if not out_path:
        return
    with open(out_path, "w") as handle:
        json.dump(results, handle, indent=2)
    results["written_to"] = out_path


# -- shared rendering --------------------------------------------------------

def speedup_suffix(entry: dict) -> str:
    """The ``(N.NNx vs seed baseline)`` annotation, when pinned."""
    if "speedup" not in entry:
        return ""
    return f"  ({entry['speedup']:.2f}x vs seed baseline)"


def render_rate_lines(results: dict, units: dict[str, str],
                      lines: list[str]) -> None:
    """One aligned line per scenario, plus the geomean aggregate."""
    for scenario, unit in units.items():
        entry = results[scenario]
        lines.append(f"{scenario:<18} {entry[unit]:>14,.0f} "
                     f"{unit.replace('_per_s', '')}/s"
                     f"{speedup_suffix(entry)}")
    if "aggregate_speedup" in results:
        lines.append(f"{'aggregate':<18} "
                     f"{results['aggregate_speedup']:>13.2f}x geomean "
                     f"(required {results['required_speedup']:.1f}x)")


def render_identity_lines(results: dict, keys: Iterable[str],
                          lines: list[str]) -> None:
    """One ``ok``/``MISMATCH!`` verdict line per identity check run."""
    for key in keys:
        if key in results:
            ok = "ok" if results[key]["fields_ok"] else "MISMATCH!"
            lines.append(f"{key:<18} {ok}")


def render_tail(results: dict, lines: list[str]) -> str:
    """The profile/trace/written-to footer every plane renders."""
    if "profile_top" in results:
        lines.append("")
        lines.append(results["profile_top"])
    if "trace" in results:
        from repro.bench.tracing import trace_summary_line
        lines.append(trace_summary_line(results["trace"]))
    if "written_to" in results:
        lines.append(f"results written to {results['written_to']}")
    return "\n".join(lines)


# -- machine-readable summaries (``bench all`` and ``--json``) ---------------

def scenario_rows(plane: str, results: dict) -> list[dict[str, Any]]:
    """Extract ``baseline vs current`` rows from one plane's results.

    A scenario qualifies when its entry pins a ``baseline_<rate>`` next
    to the measured ``<rate>`` and a ``speedup`` — the shape
    :func:`rate_entry` emits.  Seconds-based entries (the engine's
    per-mode E4 timings) are folded into the plane aggregate instead of
    listed per scenario.
    """
    rows = []
    for key, entry in results.items():
        if not isinstance(entry, dict) or "speedup" not in entry:
            continue
        baseline_key = next(
            (k for k in entry
             if k.startswith("baseline_") and k.endswith("_per_s")), None)
        if baseline_key is None:
            continue
        rate_key = baseline_key[len("baseline_"):]
        rows.append({
            "plane": plane,
            "scenario": entry.get("scenario", key),
            "unit": rate_key.replace("_per_s", "/s"),
            "current": entry[rate_key],
            "baseline": entry[baseline_key],
            "speedup": entry["speedup"],
        })
    return rows


def json_summary(plane: str, results: dict) -> dict[str, Any]:
    """The ``repro bench <plane> --json`` payload: current-vs-baseline
    rows plus the plane verdicts, without the free-form scenario dicts
    (CI asserts on this; the full snapshot lives in ``BENCH_*.json``)."""
    nested = (results.get("e4", {})
              if plane == "engine" else results)
    return {
        "plane": plane,
        "quick": bool(results.get("quick", False)),
        "rows": scenario_rows(plane, results),
        "aggregate_speedup": nested.get("aggregate_speedup"),
        "required_speedup": nested.get("required_speedup"),
        "fields_ok": bool(nested.get("fields_ok", True)),
    }
