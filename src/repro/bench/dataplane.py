"""Data-plane hot-loop benchmark (``repro bench dataplane``).

The engine bench (:mod:`repro.bench.perf`) watches the *timed* substrate;
this module watches the *functional* data plane — the pure-Python loops
that actually touch payload bytes: ``QuickLzCodec.encode``, the LZSS
:class:`~repro.compression.lzss.MatchFinder`, the GPU segment kernel's
match search, and both decoders.  The fast-path PR that vectorized those
loops (shared 3-byte hash array, slice-doubling match extension, slice
copy-out, fingerprint-keyed codec memo) is held to two promises:

1. **Identity** — every encoded stream is byte-identical to the pre-PR
   reference encoders, and the payload experiments' report fields
   (A7 segment sweep, E4 integration battery) carry the exact golden
   values captured before the change.  Always checked; timing-free.
2. **Speed** — encode throughput on the 4 KiB mixed corpus is >= 2x the
   pinned pre-PR baseline.  Wall-clock thresholds are only meaningful on
   the reference container, so the gate in
   ``benchmarks/test_p2_dataplane.py`` enforces them behind
   ``REPRO_PERF_TIMING=1``; timings are always *measured* and written to
   ``BENCH_dataplane.json``.

Scenarios (``--quick`` trims repeats and skips the E4 field check):

* **hash_array** — rolling 3-byte key precomputation over the corpus;
* **match_finder** — insert + longest_match greedy parse per block;
* **encode** — QuickLZ and LZSS container encode (the acceptance number);
* **decode** — both decoders over the corpus streams;
* **gpu_segments** — segment-parallel kernel + CPU seam refinement;
* **memo** — duplicate-heavy stream through a memoized CpuCompressor;
* **golden** — stream digests + A7/E4 field identity.

The baseline constants below are *wall-clock measurements from one
specific machine at the pre-fast-path commit*.  Speedups against them
are meaningful on that class of machine only; the identity checks are
meaningful everywhere.
"""

from __future__ import annotations

import hashlib
import random
import time
from typing import Any, Optional

from repro.bench.common import (
    attach_profile,
    attach_trace,
    best_of,
    fold_fields_ok,
    rate_entry,
    render_identity_lines,
    render_tail,
    speedup_suffix,
    start_profile,
    write_results,
)
from repro.compression import lz_common
from repro.compression.lz_common import key3_array
from repro.compression.lzss import LzssCodec, MatchFinder
from repro.compression.memo import CodecMemo
from repro.compression.parallel_cpu import CpuCompressor
from repro.compression.postprocess import refine_to_container
from repro.compression.quicklz import QuickLzCodec
from repro.gpu.kernels.lz import SegmentLzKernel
from repro.types import Chunk
from repro.workload.datagen import BlockContentGenerator

#: Pre-fast-path wall-clock baselines (reference container, best-of-5).
#: ``encode`` is the acceptance-criterion number: corpus MB/s summed over
#: the QuickLZ and LZSS passes.
BASELINE_MB_S = {
    "encode_quicklz": 3.835,
    "encode_lzss": 0.937,
    "encode": 1.506,
    "decode_quicklz": 13.970,
    "decode_lzss": 3.397,
    "gpu_segments": 0.388,
}
#: Pre-fast-path rates for the non-byte-throughput scenarios.  The
#: hash-array baseline is the per-position ``data[i]<<16|...`` loop the
#: match finders ran before the shared key array existed.
BASELINE_HASH_KEYS_PER_S = 7_158_732.0
BASELINE_MATCH_POSITIONS_PER_S = 1_144_612.0

#: The PR's acceptance bar on the reference machine.
REQUIRED_ENCODE_SPEEDUP = 2.0

#: sha256 digests of every (producer, block) encoded stream, captured at
#: the pre-fast-path commit.  The fast path must reproduce these exactly.
GOLDEN_STREAM_DIGESTS: dict[str, dict[str, str]] = {
    "zeros": {
        "quicklz": "5159a909342ba1311c7106b0efccf46ce7fef01724cc0d7c956b98848ddbf8d1",
        "lzss": "e504bd59753b3fbdcdc1e9525cef129bebd221610cf7da5f993c22088de24a79",
        "lzss_lazy": "e504bd59753b3fbdcdc1e9525cef129bebd221610cf7da5f993c22088de24a79",
        "gpu8": "cd7b96f56b626dd0fc82f159847bd6518ac4b3b0f05fe20bbd3139cda5763b4d",
    },
    "period3": {
        "quicklz": "f2a1ebf69a6f6300fc7f82ac4185e79bdc690bb09a1346f7c986d9e6c46290c1",
        "lzss": "a1dd0959e343646fa8ef322f19609a4cd5e1fee6e298cc77b93eb22df16cdf87",
        "lzss_lazy": "a1dd0959e343646fa8ef322f19609a4cd5e1fee6e298cc77b93eb22df16cdf87",
        "gpu8": "9ac5fc6bc68d82a09218131b04c87c600b803318066954b4c8c59bb1c1c6279e",
    },
    "text": {
        "quicklz": "df772eddc83433fa22d04721744eb0be35ab9f1a3d00c056fd08fadaf318cd4f",
        "lzss": "3a53755be6300f000ceb408187c5ec9df58198111125196065c53c2db3fb48cf",
        "lzss_lazy": "04ca4c199ada2ee627aa284eb59b8b1206489340e13a2d22957b7461b914992f",
        "gpu8": "ff5b7050310823a239cd7b1fd158f69ed70cd23d2a202c341b9a857e13e10847",
    },
    "random": {
        "quicklz": "76230b3ce5b6bd87742175fc7fc54a7ca545b8e9d59ed35b6be916ced8727466",
        "lzss": "76230b3ce5b6bd87742175fc7fc54a7ca545b8e9d59ed35b6be916ced8727466",
        "lzss_lazy": "76230b3ce5b6bd87742175fc7fc54a7ca545b8e9d59ed35b6be916ced8727466",
        "gpu8": "76230b3ce5b6bd87742175fc7fc54a7ca545b8e9d59ed35b6be916ced8727466",
    },
    "ratio2_0": {
        "quicklz": "b29f034a099dcc59045633245eca26f1815e622960f7f8b7d9171c8eb9ae404a",
        "lzss": "74637f39e25e7f5e385a92027ecaee045fc4e66fa10f6225dc069ea6562fa02a",
        "lzss_lazy": "74637f39e25e7f5e385a92027ecaee045fc4e66fa10f6225dc069ea6562fa02a",
        "gpu8": "89e6e7aa23a4e34b8d0a6dc19421dcfdeadc3bb6c5b337f400dcb7410b3907fb",
    },
    "ratio2_1": {
        "quicklz": "85c16cf73804dc7056d503c7308826fe95bee8234c1d9d671da07ab5635fce87",
        "lzss": "60d3e3afe59c6677edcaf41d22624240cc51c1090f4976803f1c14774f7b5f49",
        "lzss_lazy": "60d3e3afe59c6677edcaf41d22624240cc51c1090f4976803f1c14774f7b5f49",
        "gpu8": "e14fc72e4e42281477b4a36344b13412c7fd2eeda88f274adcdff63e36c1694d",
    },
    "ratio2_2": {
        "quicklz": "241ce41fce375af9172a8878f28542c431e1fcad73f2ee088bce9580481eda6a",
        "lzss": "6752980b6efd59c2b406c26f141d067bbb27f96b78c791dc972387328472dafd",
        "lzss_lazy": "6752980b6efd59c2b406c26f141d067bbb27f96b78c791dc972387328472dafd",
        "gpu8": "77ff94fb947edf565064fca2aa5fb71d8798b3eb5b8a41f0233cfac5d3070280",
    },
    "ratio2_3": {
        "quicklz": "91824166c4a9fddef08f17b32d876ba25cc5c4ab73863ed561a2dc95bd4a0e0b",
        "lzss": "9f9b2db9cc81c80e69b7570df6daed59dab1711f658f175b7bf280b137e7362d",
        "lzss_lazy": "9f9b2db9cc81c80e69b7570df6daed59dab1711f658f175b7bf280b137e7362d",
        "gpu8": "9f9b2db9cc81c80e69b7570df6daed59dab1711f658f175b7bf280b137e7362d",
    },
    "seam512": {
        "quicklz": "61eadc51696f37454ea6b76d07391c2ce229442e70401956739ed7510de0c56f",
        "lzss": "19def9d76476c324003368c02937722a58c12277c251f964d1cc3dc811e1f431",
        "lzss_lazy": "19def9d76476c324003368c02937722a58c12277c251f964d1cc3dc811e1f431",
        "gpu8": "4cb887f2ecc2f172e4414497bdaf390b445da9e51038f6c3362977f8705b63e5",
    },
    "tail2": {
        "quicklz": "ba3b9ef01dfe02c6f803ca7227cf069c4370e810c6b69e461d807fd9d58121fc",
        "lzss": "ba3b9ef01dfe02c6f803ca7227cf069c4370e810c6b69e461d807fd9d58121fc",
        "lzss_lazy": "ba3b9ef01dfe02c6f803ca7227cf069c4370e810c6b69e461d807fd9d58121fc",
        "gpu8": "ba3b9ef01dfe02c6f803ca7227cf069c4370e810c6b69e461d807fd9d58121fc",
    },
    "tail1": {
        "quicklz": "12c6979e95ed1aed3c86f6cf9fb5c017d8a4fd69438b1d6c4679ce26b5d3e918",
        "lzss": "12c6979e95ed1aed3c86f6cf9fb5c017d8a4fd69438b1d6c4679ce26b5d3e918",
        "lzss_lazy": "12c6979e95ed1aed3c86f6cf9fb5c017d8a4fd69438b1d6c4679ce26b5d3e918",
        "gpu8": "12c6979e95ed1aed3c86f6cf9fb5c017d8a4fd69438b1d6c4679ce26b5d3e918",
    },
}

#: Exact A7 segment-sweep fields at the pre-fast-path commit
#: (segments -> (ratio, ratio_loss_vs_serial)).  The kernel cost model is
#: untouched by the fast path, so the critical-path column is not pinned.
GOLDEN_A7_FIELDS: dict[int, tuple[float, float]] = {
    1: (2.128713728886964, 0.0),
    2: (2.128713728886964, 0.0),
    4: (2.125399982703451, 0.0015566894404565046),
    8: (2.123746975458002, 0.00233321811268572),
    16: (2.1220965374320007, 0.0031085398497538996),
}


# -- corpus -----------------------------------------------------------------

def build_corpus() -> list[tuple[str, bytes]]:
    """The deterministic 4 KiB mixed corpus (plus adversarial tails).

    Fixed forever: the golden digests above are digests of *encodings of
    these exact bytes*.  Blocks cover the codec edge cases — all-zero
    runs, period-3 repeats, natural text, incompressible randomness,
    calibrated ratio-2.0 storage blocks, a seam-periodic block whose
    repeats straddle GPU segment boundaries, and sub-``min_match`` tails.
    """
    blocks: list[tuple[str, bytes]] = []
    blocks.append(("zeros", b"\x00" * 4096))
    blocks.append(("period3", (b"abc" * 1366)[:4096]))
    text = b"the quick brown fox jumps over the lazy dog. "
    blocks.append(("text", (text * 92)[:4096]))
    rng = random.Random(20170905)
    blocks.append(("random", bytes(rng.randrange(256)
                                   for _ in range(4096))))
    generator = BlockContentGenerator(2.0, seed=3)
    generator.calibrate()
    for salt in range(4):
        blocks.append((f"ratio2_{salt}",
                       generator.make_block(4096, salt=salt)))
    # Every 512-byte segment identical: matches reach backward across
    # the seams of an 8-segment GPU parse.
    seam_base = bytes(rng.randrange(256) for _ in range(512))
    blocks.append(("seam512", seam_base * 8))
    blocks.append(("tail2", b"ab"))
    blocks.append(("tail1", b"\xff"))
    return blocks


def duplicate_stream(copies: int = 8) -> list[bytes]:
    """A duplicate-heavy block stream (memo scenario's input)."""
    unique = [payload for _, payload in build_corpus()
              if len(payload) == 4096][:4]
    return unique * copies


# -- scenarios --------------------------------------------------------------

def bench_hash_array(repeats: int = 5) -> dict:
    """Rolling 3-byte key precomputation over the corpus.

    Measures the *compute* path: the content-keyed array cache is cleared
    before every pass, otherwise every repeat after the first would just
    time a dict hit.
    """
    payloads = [p for _, p in build_corpus()]
    total_keys = sum(max(0, len(p) - 2) for p in payloads)

    def run() -> None:
        lz_common._KEY3_CACHE.clear()
        for payload in payloads:
            key3_array(payload)

    seconds = best_of(run, repeats)
    return rate_entry("hash_array", total_keys, seconds, "keys_per_s",
                      {"hash_array": BASELINE_HASH_KEYS_PER_S},
                      ops_key="keys")


def bench_match_finder(repeats: int = 3) -> dict:
    """Greedy insert + longest_match parse of every corpus block."""
    payloads = [p for _, p in build_corpus()]
    total_positions = sum(len(p) for p in payloads)

    def run() -> None:
        for payload in payloads:
            finder = MatchFinder(payload)
            pos = 0
            n = len(payload)
            while pos < n:
                match = finder.longest_match(pos)
                if match is not None:
                    for offset in range(match.length):
                        finder.insert(pos + offset)
                    pos += match.length
                else:
                    finder.insert(pos)
                    pos += 1

    seconds = best_of(run, repeats)
    return rate_entry("match_finder", total_positions, seconds,
                      "positions_per_s",
                      {"match_finder": BASELINE_MATCH_POSITIONS_PER_S},
                      ops_key="positions")


def _mb_s_entry(name: str, nbytes: int, seconds: float) -> dict:
    return rate_entry(name, nbytes, seconds, "mb_per_s", BASELINE_MB_S,
                      scale=1e-6, ops_key="bytes",
                      include_scenario=False)


def bench_encode(repeats: int = 5) -> dict:
    """QuickLZ + LZSS encode throughput — the acceptance number."""
    payloads = [p for _, p in build_corpus()]
    nbytes = sum(len(p) for p in payloads)
    quicklz, lzss = QuickLzCodec(), LzssCodec()

    q_seconds = best_of(
        lambda: [quicklz.encode(p) for p in payloads], repeats)
    l_seconds = best_of(
        lambda: [lzss.encode(p) for p in payloads], repeats)
    result = {
        "scenario": "encode",
        "quicklz": _mb_s_entry("encode_quicklz", nbytes, q_seconds),
        "lzss": _mb_s_entry("encode_lzss", nbytes, l_seconds),
    }
    combined = _mb_s_entry("encode", 2 * nbytes, q_seconds + l_seconds)
    result["combined"] = combined
    return result


def bench_decode(repeats: int = 5) -> dict:
    """Decode throughput over the corpus streams (both decoders)."""
    payloads = [p for _, p in build_corpus()]
    nbytes = sum(len(p) for p in payloads)
    quicklz, lzss = QuickLzCodec(), LzssCodec()
    q_blobs = [quicklz.encode(p) for p in payloads]
    l_blobs = [lzss.encode(p) for p in payloads]

    q_seconds = best_of(
        lambda: [quicklz.decode(b) for b in q_blobs], repeats)
    l_seconds = best_of(
        lambda: [lzss.decode(b) for b in l_blobs], repeats)
    return {
        "scenario": "decode",
        "quicklz": _mb_s_entry("decode_quicklz", nbytes, q_seconds),
        "lzss": _mb_s_entry("decode_lzss", nbytes, l_seconds),
    }


def bench_gpu_segments(repeats: int = 3,
                       segments_per_chunk: int = 8) -> dict:
    """Segment-parallel kernel + CPU seam refinement over the corpus."""
    payloads = [p for _, p in build_corpus() if len(p) >= 512]
    nbytes = sum(len(p) for p in payloads)

    def run() -> None:
        kernel = SegmentLzKernel(
            payloads, segments_per_chunk=segments_per_chunk)
        for payload, per_chunk in zip(payloads, kernel.execute()):
            refine_to_container(payload, per_chunk)

    seconds = best_of(run, repeats)
    result = {"scenario": "gpu_segments",
              "segments_per_chunk": segments_per_chunk}
    result.update(_mb_s_entry("gpu_segments", nbytes, seconds))
    return result


def bench_memo(copies: int = 8) -> dict:
    """Duplicate-heavy stream through a memoized ``CpuCompressor``.

    No pre-PR baseline exists (the memo is new); the scenario reports
    the hit rate and the cold/warm pass times so regressions show up in
    ``BENCH_dataplane.json`` history.
    """
    payloads = duplicate_stream(copies=copies)

    def one_pass(compressor: CpuCompressor) -> float:
        started = time.perf_counter()
        for index, payload in enumerate(payloads):
            chunk = Chunk(offset=index * len(payload), size=len(payload),
                          payload=payload)
            compressor.compress(chunk)
        return time.perf_counter() - started

    memo = CodecMemo(capacity=64)
    memoized = CpuCompressor(memo=memo)
    cold = one_pass(memoized)
    warm = one_pass(memoized)
    plain = one_pass(CpuCompressor())
    return {
        "scenario": "memo",
        "chunks": len(payloads),
        "unique_contents": len({p for p in payloads}),
        "hits": memo.hits,
        "misses": memo.misses,
        "hit_rate": memo.hits / max(1, memo.hits + memo.misses),
        "cold_seconds": cold,
        "warm_seconds": warm,
        "unmemoized_seconds": plain,
        "warm_speedup_vs_unmemoized": plain / warm,
    }


# -- identity ---------------------------------------------------------------

def stream_digests() -> dict[str, dict[str, str]]:
    """sha256 of every producer's encoded stream for every corpus block."""
    quicklz = QuickLzCodec()
    lzss = LzssCodec()
    lzss_lazy = LzssCodec(lazy=True)
    digests: dict[str, dict[str, str]] = {}
    for name, payload in build_corpus():
        entry = {
            "quicklz": hashlib.sha256(
                quicklz.encode(payload)).hexdigest(),
            "lzss": hashlib.sha256(lzss.encode(payload)).hexdigest(),
            "lzss_lazy": hashlib.sha256(
                lzss_lazy.encode(payload)).hexdigest(),
        }
        kernel = SegmentLzKernel([payload], segments_per_chunk=8)
        (outputs,) = kernel.execute()
        entry["gpu8"] = hashlib.sha256(
            refine_to_container(payload, outputs)).hexdigest()
        digests[name] = entry
    return digests


def check_golden_streams() -> dict:
    """Compare current stream digests against the pinned goldens."""
    observed = stream_digests()
    mismatches: dict[str, dict[str, dict[str, str]]] = {}
    for name, golden_entry in GOLDEN_STREAM_DIGESTS.items():
        for producer, golden in golden_entry.items():
            got = observed.get(name, {}).get(producer)
            if got != golden:
                mismatches.setdefault(name, {})[producer] = {
                    "observed": got, "golden": golden}
    return {"streams": len(observed),
            "producers_checked": sum(len(v) for v in
                                     GOLDEN_STREAM_DIGESTS.values()),
            "fields_ok": not mismatches,
            **({"mismatches": mismatches} if mismatches else {})}


def check_golden_a7() -> dict:
    """Re-run the A7 segment sweep; fields must match exactly."""
    from repro.bench.experiments import a7_segment_sweep

    rows = a7_segment_sweep()
    mismatches: dict[int, dict] = {}
    observed = {row.segments: (row.ratio, row.ratio_loss_vs_serial)
                for row in rows}
    for segments, golden in GOLDEN_A7_FIELDS.items():
        got = observed.get(segments)
        if got != golden:
            mismatches[segments] = {"observed": got, "golden": golden}
    return {"rows": len(rows), "fields_ok": not mismatches,
            **({"mismatches": mismatches} if mismatches else {})}


def check_golden_e4() -> dict:
    """One E4 run per mode; report fields must match the engine goldens."""
    import dataclasses

    from repro.bench.perf import GOLDEN_E4_CHUNKS, GOLDEN_E4_FIELDS
    from repro.core.calibration import run_mode
    from repro.core.modes import IntegrationMode

    mismatches: dict[str, dict] = {}
    for mode in IntegrationMode.all_modes():
        report = dataclasses.asdict(run_mode(mode, GOLDEN_E4_CHUNKS))
        for field, golden in GOLDEN_E4_FIELDS[mode.value].items():
            if report[field] != golden:
                mismatches.setdefault(mode.value, {})[field] = {
                    "observed": report[field], "golden": golden}
    return {"modes": len(IntegrationMode.all_modes()),
            "fields_ok": not mismatches,
            **({"mismatches": mismatches} if mismatches else {})}


# -- driver -----------------------------------------------------------------

def run_dataplane_bench(quick: bool = False, profile: bool = False,
                        out_path: Optional[str] = "BENCH_dataplane.json",
                        trace_path: Optional[str] = None) -> dict:
    """Run all scenarios; write ``BENCH_dataplane.json``; return the dict.

    ``quick`` halves repeats and skips the (slow) E4 field re-run — the
    golden stream and A7 checks still run, so CI keeps full identity
    coverage of the functional encoders.  ``trace_path`` additionally
    runs one traced ``gpu_comp`` pipeline (the compression-heavy mode
    this bench's loops feed) and writes its Chrome trace there.
    """
    from repro.core.modes import IntegrationMode

    profiler = start_profile(profile)
    repeats = 2 if quick else 5
    results: dict[str, Any] = {
        "bench": "dataplane-hotpath",
        "quick": quick,
        "hash_array": bench_hash_array(repeats=repeats),
        "match_finder": bench_match_finder(repeats=max(2, repeats - 2)),
        "encode": bench_encode(repeats=repeats),
        "decode": bench_decode(repeats=repeats),
        "gpu_segments": bench_gpu_segments(repeats=max(2, repeats - 2)),
        "memo": bench_memo(),
        "golden_streams": check_golden_streams(),
        "golden_a7": check_golden_a7(),
    }
    if not quick:
        results["golden_e4"] = check_golden_e4()
    fold_fields_ok(results, ("golden_streams", "golden_a7",
                             "golden_e4"))
    attach_profile(profiler, results)
    attach_trace(results, trace_path, IntegrationMode.GPU_COMP,
                 2048 if quick else 8192)
    write_results(results, out_path)
    return results


def render_dataplane_bench(results: dict) -> str:
    """Human-readable summary of :func:`run_dataplane_bench` output."""
    lines = []

    def rate_line(label: str, entry: dict, unit: str, key: str) -> None:
        lines.append(f"{label:<18} {entry[key]:>14,.0f} {unit}"
                     f"{speedup_suffix(entry)}")

    rate_line("hash array", results["hash_array"], "keys/s",
              "keys_per_s")
    rate_line("match finder", results["match_finder"], "pos/s",
              "positions_per_s")
    encode = results["encode"]
    for codec in ("quicklz", "lzss"):
        rate_line(f"encode {codec}", encode[codec], "MB/s", "mb_per_s")
    rate_line("encode combined", encode["combined"], "MB/s", "mb_per_s")
    decode = results["decode"]
    for codec in ("quicklz", "lzss"):
        rate_line(f"decode {codec}", decode[codec], "MB/s", "mb_per_s")
    rate_line("gpu segments", results["gpu_segments"], "MB/s",
              "mb_per_s")
    memo = results["memo"]
    lines.append(f"memo              hit rate {memo['hit_rate']:.1%}, "
                 f"warm pass {memo['warm_speedup_vs_unmemoized']:.1f}x "
                 f"vs unmemoized")
    render_identity_lines(
        results, ("golden_streams", "golden_a7", "golden_e4"), lines)
    return render_tail(results, lines)
