"""Cluster sharding benchmark (``repro bench cluster``).

The engine/dataplane/dedup/pipeline planes watch one node; this fifth
plane watches the simulated *cluster* — N reduction nodes partitioning
one fingerprint space by bin prefix (:mod:`repro.cluster`).  The PR
that added the cluster is held to the same two promises as every other
perf plane:

1. **Identity** — the merged cluster report is byte-identical across
   executor choices (serial vs multiprocessing), and its ``aggregate``
   section is invariant across node counts: the N-node run reproduces
   the 1-node oracle's chunk/byte/counter totals exactly.  The pinned
   sha256 digests below freeze the merged reports of the golden
   descriptor corpus at 1, 2 and 4 nodes.  Always checked; timing-free.
2. **Speed** — the mask-based router beats the per-chunk reference
   router (kept below as the seed baseline path) by the pinned
   geomean, and the multiprocessing executor at 4+ nodes beats the
   1-node serial run by >= 2x wall clock.  Wall-clock thresholds are
   only meaningful on the reference container — and the mp gate
   additionally needs >= 4 usable cores — so the assertions in
   ``benchmarks/test_p8_cluster.py`` sit behind ``REPRO_PERF_TIMING=1``
   (plus the core check); timings are always *measured* and written to
   ``BENCH_cluster.json``, alongside ``host_cpus`` so a committed
   snapshot from a small container is interpretable.

Scenarios (``--quick`` trims corpus sizes and repeats):

* **bin_ids** — vectorized fingerprint->bin prefix fold over a window
  (vs the per-chunk ``int.from_bytes`` loop);
* **route_split** — mask-based splitting of 512-chunk routing windows
  across 4 shards (vs the per-chunk append-loop reference router;
  vectorized splitting needs wide windows — at the pipeline's 64-chunk
  ingest window the two paths are within ~10% of each other);
* **ingest** — one full cluster run at the requested topology
  (``--nodes``/``--executor``), end-to-end chunks/s;
* **scale_curve** — serial ingest throughput at 1/2/4 nodes;
* **shard_skew** — routed bytes per shard under ``range`` vs
  ``balanced`` assignment on a dup-heavy corpus;
* **rebalance_cost** — greedy skew repair: imbalance before/after,
  moved bins/bytes, modeled migration seconds;
* **mp_speedup** — mp 4-node vs serial 1-node wall clock on a
  payload-mode corpus (the compute-heavy case sharding exists for);
* **identity** — pinned merged-report digests, N-node vs 1-node
  aggregate oracle, serial vs mp byte-identity.
"""

from __future__ import annotations

import os
import time
from typing import Any, Optional

import numpy as np

from repro.bench.common import (
    attach_profile,
    best_of,
    fold_fields_ok,
    rate_entry,
    render_identity_lines,
    render_rate_lines,
    render_tail,
    set_aggregate,
    start_profile,
    write_results,
)
from repro.chunkbatch import ChunkBatch
from repro.cluster import (
    ClusterConfig,
    ClusterEngine,
    ClusterRouter,
    RoutedWindow,
    ShardMap,
)
from repro.workload.vdbench import VdbenchStream

#: Per-chunk reference-path wall-clock baselines (reference container,
#: best-of-5): the append-loop router and the ``int.from_bytes`` bin
#: fold the mask-based :class:`~repro.cluster.router.ClusterRouter`
#: replaces.
BASELINE_RATES = {
    "bin_ids": 6_680_000.0,
    "route_split": 1_050_000.0,
}

#: The plane's acceptance bar on the reference machine (geomean of the
#: two routed-path scenarios).
REQUIRED_CLUSTER_SPEEDUP = 2.0

#: The mp-executor acceptance bar: wall-clock speedup of the 4-node
#: multiprocessing run over the 1-node serial run, payload mode.  Only
#: meaningful with >= ``MP_GATE_MIN_CPUS`` usable cores.
REQUIRED_MP_SPEEDUP = 2.0
MP_GATE_MIN_CPUS = 4

#: Golden identity corpus (descriptor mode — fixed forever: the digests
#: below are sha256 of *merged reports over these exact windows*).
GOLDEN_CHUNKS = 1024
GOLDEN_WINDOW = 64
GOLDEN_SEED = 1234

#: sha256 of the canonical merged-report JSON at 1/2/4 nodes over the
#: golden corpus (serial executor; the mp executor must reproduce the
#: same bytes — ``check_executor_identity`` asserts that).
GOLDEN_MERGED_SHA256 = {
    1: "0f22d8639076ab96cc3a7e68addea156bec998ee75ad17a4b1564a9fa9b5f140",
    2: "dedb4bedf96391c43b80e7b4e1c6b7fa2e8360043684265a4bddca9c491b5f46",
    4: "c23566ae96cf2261a7e18fa8b055d4cb743e72680c51505b68fe33713151e8c5",
}


def host_cpus() -> int:
    """Usable CPU count (affinity-aware; what mp can actually run on)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def golden_config(nodes: int, executor: str = "serial",
                  **overrides) -> ClusterConfig:
    """The pinned identity-corpus config at ``nodes`` shards."""
    params = dict(nodes=nodes, executor=executor, chunks=GOLDEN_CHUNKS,
                  window=GOLDEN_WINDOW, seed=GOLDEN_SEED)
    params.update(overrides)
    return ClusterConfig(**params)


# -- routed-path scenarios (pinned per-chunk baselines) ----------------------

def _corpus_windows(chunks: int, window: int = GOLDEN_WINDOW,
                    **stream_kwargs) -> list[ChunkBatch]:
    """Descriptor-mode windows of the deterministic bench corpus."""
    stream = VdbenchStream(seed=GOLDEN_SEED, **stream_kwargs)
    batches = []
    remaining = chunks
    while remaining > 0:
        batch = stream.next_batch(min(window, remaining))
        remaining -= len(batch)
        batches.append(batch)
    return batches


def _bin_ids_per_chunk(fingerprints: list[bytes],
                       prefix_bytes: int) -> list[int]:
    """The seed per-chunk bin fold ``bin_ids`` replaced."""
    return [int.from_bytes(fp[:prefix_bytes], "big")
            for fp in fingerprints]


def _route_per_chunk(batch: ChunkBatch,
                     shard_map: ShardMap) -> list[RoutedWindow]:
    """The seed per-chunk reference router ``ClusterRouter.split``
    replaced: one python loop over the window, appending each chunk's
    columns to its shard's lists."""
    columns: dict[int, list[list]] = {}
    for index, fingerprint in enumerate(batch.fingerprints):
        bin_id = int.from_bytes(
            fingerprint[:shard_map.prefix_bytes], "big")
        shard = shard_map.shard_of(bin_id)
        rows = columns.setdefault(shard, [[], [], [], [], []])
        rows[0].append(int(batch.offsets[index]))
        rows[1].append(int(batch.sizes[index]))
        rows[2].append(batch.payloads[index]
                       if batch.payloads is not None else None)
        rows[3].append(fingerprint)
        rows[4].append(float(batch.comp_ratios[index]))
    windows = []
    for shard in sorted(columns):
        rows = columns[shard]
        windows.append(RoutedWindow(
            shard=shard,
            offsets=np.asarray(rows[0], dtype=np.int64),
            sizes=np.asarray(rows[1], dtype=np.int64),
            payloads=rows[2],
            fingerprints=rows[3],
            comp_ratios=np.asarray(rows[4], dtype=np.float64)))
    return windows


def bench_bin_ids(repeats: int = 5, chunks: int = 8192) -> dict:
    """Vectorized bin-prefix fold vs the per-chunk loop it replaced."""
    batches = _corpus_windows(chunks, window=512)
    router = ClusterRouter(ShardMap(4))
    fingerprint_lists = [batch.fingerprints for batch in batches]

    def run() -> None:
        for fingerprints in fingerprint_lists:
            router.bin_ids(fingerprints)

    seconds = best_of(run, repeats)
    return rate_entry("bin_ids", chunks, seconds, "chunks_per_s",
                      BASELINE_RATES)


def bench_route_split(repeats: int = 5, chunks: int = 8192) -> dict:
    """Mask-based window splitting vs the per-chunk reference router."""
    batches = _corpus_windows(chunks, window=512)
    shard_map = ShardMap(4)

    def run() -> None:
        router = ClusterRouter(shard_map)
        for batch in batches:
            for routed in router.split(batch):
                pass

    seconds = best_of(run, repeats)
    return rate_entry("route_split", chunks, seconds, "chunks_per_s",
                      BASELINE_RATES)


def measure_per_chunk_baselines(repeats: int = 5,
                                chunks: int = 8192) -> dict[str, float]:
    """Measure the seed per-chunk reference paths (what the pinned
    ``BASELINE_RATES`` were captured from on the reference machine)."""
    batches = _corpus_windows(chunks, window=512)
    shard_map = ShardMap(4)
    fingerprint_lists = [batch.fingerprints for batch in batches]

    def fold() -> None:
        for fingerprints in fingerprint_lists:
            _bin_ids_per_chunk(fingerprints, shard_map.prefix_bytes)

    wide = _corpus_windows(chunks, window=512)

    def route() -> None:
        for batch in wide:
            _route_per_chunk(batch, shard_map)

    return {"bin_ids": chunks / best_of(fold, repeats),
            "route_split": chunks / best_of(route, repeats)}


# -- cluster-run scenarios ---------------------------------------------------

def _timed_run(config: ClusterConfig) -> tuple[float, Any]:
    started = time.perf_counter()
    result = ClusterEngine(config).run()
    return time.perf_counter() - started, result


def bench_ingest(nodes: int = 4, executor: str = "serial",
                 quick: bool = False) -> dict:
    """One full cluster run at the requested topology."""
    chunks = 1024 if quick else 4096
    seconds, result = _timed_run(golden_config(
        nodes, executor=executor, chunks=chunks))
    cluster = result.merged["cluster"]
    return {
        "scenario": "ingest",
        "nodes": nodes,
        "executor": executor,
        "chunks": chunks,
        "seconds": seconds,
        "chunks_per_s": chunks / seconds,
        "routing_skew": cluster["routing"]["max_over_mean"],
        "net_utilization": cluster["net"]["utilization"],
        "digest": result.digest(),
    }


def bench_scale_curve(quick: bool = False,
                      node_counts: tuple = (1, 2, 4)) -> dict:
    """Serial ingest throughput as the shard count grows.

    Serial execution adds router/merge overhead but no parallelism, so
    the curve isolates the *sharding tax*; the mp scenario below is
    where the node axis buys wall clock back.
    """
    chunks = 1024 if quick else 4096
    curve = {}
    for nodes in node_counts:
        seconds, result = _timed_run(golden_config(nodes, chunks=chunks))
        curve[str(nodes)] = {
            "seconds": seconds,
            "chunks_per_s": chunks / seconds,
            "routing_skew":
                result.merged["cluster"]["routing"]["max_over_mean"],
        }
    base = curve[str(node_counts[0])]["seconds"]
    return {"scenario": "scale_curve", "chunks": chunks,
            "nodes": curve,
            "sharding_tax":
                curve[str(node_counts[-1])]["seconds"] / base}


def bench_shard_skew(quick: bool = False) -> dict:
    """Routed-bytes skew under ``range`` vs ``balanced`` assignment.

    A dup-heavy, high-locality corpus concentrates traffic in few bins;
    the balanced (LPT over observed loads) assignment should cut the
    max-over-mean shard skew the static range split shows.
    """
    chunks = 1024 if quick else 4096
    batches = _corpus_windows(chunks, dedup_ratio=4.0, locality=0.9)
    out: dict[str, Any] = {"scenario": "shard_skew", "chunks": chunks}

    range_router = ClusterRouter(ShardMap(4, assignment="range"))
    for batch in batches:
        for _ in range_router.split(batch):
            pass
    out["range"] = range_router.skew()

    loads = range_router.bin_loads()
    balanced_router = ClusterRouter(
        ShardMap(4, assignment="balanced", loads=loads))
    for batch in batches:
        for _ in balanced_router.split(batch):
            pass
    out["balanced"] = balanced_router.skew()
    out["skew_reduction"] = (out["range"]["max_over_mean"]
                             / out["balanced"]["max_over_mean"])
    return out


def bench_rebalance(quick: bool = False) -> dict:
    """Greedy skew repair on observed loads, with its modeled cost."""
    chunks = 1024 if quick else 4096
    engine = ClusterEngine(golden_config(
        4, chunks=chunks, dedup_ratio=4.0, locality=0.9))
    engine.run()
    before = engine.netlink.finish()
    plan = engine.shard_map.rebalance(engine.router.bin_loads())
    cost_s = engine.netlink.cost_s(
        plan.moved_load + plan.moved_bins * 48, plan.moved_bins)
    return {
        "scenario": "rebalance_cost",
        "chunks": chunks,
        "imbalance_before": plan.imbalance_before,
        "imbalance_after": plan.imbalance_after,
        "moved_bins": plan.moved_bins,
        "moved_load": plan.moved_load,
        "migration_s": cost_s,
        "run_net_busy_s": before.busy_s,
    }


def bench_mp_speedup(quick: bool = False) -> dict:
    """mp 4-node vs serial 1-node wall clock, payload-mode corpus.

    This is the headline number sharding exists for — real codec work
    fanned across processes.  On a 1-core container the mp run is
    *slower* than serial (everything timeslices one core plus IPC), so
    the >= 2x gate only applies with >= ``MP_GATE_MIN_CPUS`` usable
    cores; ``host_cpus`` is recorded so the committed snapshot says
    which regime produced it.
    """
    chunks = 512 if quick else 2048
    serial_s, serial_result = _timed_run(golden_config(
        1, chunks=chunks, payload=True, chunk_size=1024))
    mp_s, mp_result = _timed_run(golden_config(
        4, executor="mp", chunks=chunks, payload=True, chunk_size=1024))
    return {
        "scenario": "mp_speedup",
        "chunks": chunks,
        "host_cpus": host_cpus(),
        "serial_1node_seconds": serial_s,
        "mp_4node_seconds": mp_s,
        "speedup_vs_serial": serial_s / mp_s,
        "required_speedup": REQUIRED_MP_SPEEDUP,
        "gate_applies": host_cpus() >= MP_GATE_MIN_CPUS,
        "aggregates_match": (serial_result.merged["aggregate"]
                             == mp_result.merged["aggregate"]),
    }


# -- identity ----------------------------------------------------------------

def check_node_equivalence() -> dict:
    """1/2/4-node merged reports vs the pinned digests and the 1-node
    aggregate oracle (always full-size: digests are corpus-exact)."""
    results = {nodes: ClusterEngine(golden_config(nodes)).run()
               for nodes in sorted(GOLDEN_MERGED_SHA256)}
    oracle = results[1].merged["aggregate"]
    mismatches: dict[str, Any] = {}
    for nodes, result in results.items():
        digest = result.digest()
        golden = GOLDEN_MERGED_SHA256[nodes]
        if digest != golden:
            mismatches[f"digest_{nodes}"] = {
                "observed": digest, "golden": golden}
        if result.merged["aggregate"] != oracle:
            mismatches[f"aggregate_{nodes}"] = {
                "observed": result.merged["aggregate"],
                "oracle": oracle}
    return {"node_counts": sorted(results), "fields_ok": not mismatches,
            **({"mismatches": mismatches} if mismatches else {})}


def check_executor_identity(quick: bool = False) -> dict:
    """Serial vs mp merged reports must be byte-identical.

    Descriptor mode always; payload mode too on full runs (the payload
    path is where per-shard compute — and therefore any scheduling
    sensitivity — lives).
    """
    cases = [("descriptor", dict(chunks=512))]
    if not quick:
        cases.append(("payload", dict(chunks=512, payload=True,
                                      chunk_size=1024)))
    mismatches: dict[str, Any] = {}
    for name, overrides in cases:
        serial = ClusterEngine(
            golden_config(2, **overrides)).run()
        mp = ClusterEngine(
            golden_config(2, executor="mp", **overrides)).run()
        if serial.to_json() != mp.to_json():
            mismatches[name] = {"serial": serial.digest(),
                                "mp": mp.digest()}
    return {"cases": [name for name, _ in cases],
            "fields_ok": not mismatches,
            **({"mismatches": mismatches} if mismatches else {})}


def check_rebalance_residency() -> dict:
    """After a rebalance every bin still lives on exactly one shard."""
    engine = ClusterEngine(golden_config(
        4, chunks=512, dedup_ratio=4.0, locality=0.9))
    engine.run()
    shard_map = engine.shard_map
    shard_map.rebalance(engine.router.bin_loads())
    table = shard_map.table
    ok = (table.shape == (shard_map.n_bins,)
          and bool((table >= 0).all())
          and bool((table < shard_map.nodes).all()))
    return {"bins": int(table.shape[0]), "fields_ok": ok}


# -- trace -------------------------------------------------------------------

def write_cluster_trace(out_path: str, quick: bool = False) -> dict:
    """One traced cluster run -> validated Chrome trace at ``out_path``.

    The spans are the NetLink transfers (dispatch/flush) on the
    ``netlink`` track — the cluster plane's simulated time lives on the
    interconnect, not in the workers.
    """
    import json

    from repro.obs import (
        CriticalPathReport,
        SimTracer,
        chrome_trace,
        validate_chrome_trace,
    )

    chunks = 512 if quick else 2048
    tracer = SimTracer()
    engine = ClusterEngine(golden_config(4, chunks=chunks),
                           tracer=tracer)
    engine.run()
    payload = chrome_trace(tracer.spans)
    with open(out_path, "w") as handle:
        json.dump(payload, handle)
    critical = CriticalPathReport.from_spans(tracer.spans)
    return {
        "mode": "cluster",
        "chunks": chunks,
        "out_path": out_path,
        "n_spans": len(tracer.spans),
        "n_events": len(payload["traceEvents"]),
        "coverage": critical.coverage,
        "mean_latency_s": critical.mean_latency_s,
        "problems": validate_chrome_trace(payload),
    }


# -- driver ------------------------------------------------------------------

def run_cluster_bench(quick: bool = False, profile: bool = False,
                      out_path: Optional[str] = "BENCH_cluster.json",
                      trace_path: Optional[str] = None,
                      nodes: Optional[int] = None,
                      executor: Optional[str] = None) -> dict:
    """Run all scenarios; write ``BENCH_cluster.json``; return the dict.

    ``nodes``/``executor`` retarget the headline ``ingest`` scenario
    (default 4-node serial); the identity checks and the routed-path
    scenarios always run at their pinned shapes.  ``quick`` trims
    corpus sizes and repeats — identity digests still run full-size
    (they are corpus-exact), so CI keeps complete equivalence coverage.
    """
    profiler = start_profile(profile)
    repeats = 2 if quick else 5
    results: dict[str, Any] = {
        "bench": "cluster-shard",
        "quick": quick,
        "host_cpus": host_cpus(),
        "bin_ids": bench_bin_ids(repeats=repeats),
        "route_split": bench_route_split(repeats=repeats),
        "ingest": bench_ingest(nodes=nodes or 4,
                               executor=executor or "serial",
                               quick=quick),
        "scale_curve": bench_scale_curve(quick=quick),
        "shard_skew": bench_shard_skew(quick=quick),
        "rebalance_cost": bench_rebalance(quick=quick),
        "mp_speedup": bench_mp_speedup(quick=quick),
        "node_equivalence": check_node_equivalence(),
        "executor_identity": check_executor_identity(quick=quick),
        "rebalance_residency": check_rebalance_residency(),
    }
    fold_fields_ok(results, ("node_equivalence", "executor_identity",
                             "rebalance_residency"))
    set_aggregate(results, BASELINE_RATES, REQUIRED_CLUSTER_SPEEDUP)
    attach_profile(profiler, results)
    if trace_path:
        results["trace"] = write_cluster_trace(trace_path, quick=quick)
    write_results(results, out_path)
    return results


def render_cluster_bench(results: dict) -> str:
    """Human-readable summary of :func:`run_cluster_bench` output."""
    lines = []
    units = {"bin_ids": "chunks_per_s",
             "route_split": "chunks_per_s"}
    render_rate_lines(results, units, lines)
    ingest = results["ingest"]
    lines.append(f"{'ingest':<18} {ingest['chunks_per_s']:>14,.0f} "
                 f"chunks/s ({ingest['nodes']} nodes, "
                 f"{ingest['executor']})")
    curve = results["scale_curve"]["nodes"]
    scale = ", ".join(f"{n}n {entry['chunks_per_s']:,.0f}/s"
                      for n, entry in curve.items())
    lines.append(f"{'scale_curve':<18} {scale}")
    skew = results["shard_skew"]
    lines.append(f"{'shard_skew':<18} range "
                 f"{skew['range']['max_over_mean']:.3f} -> balanced "
                 f"{skew['balanced']['max_over_mean']:.3f} max/mean")
    rebalance = results["rebalance_cost"]
    lines.append(f"{'rebalance':<18} imbalance "
                 f"{rebalance['imbalance_before']:.3f} -> "
                 f"{rebalance['imbalance_after']:.3f} "
                 f"({rebalance['moved_bins']} bins, "
                 f"{rebalance['moved_load']:,} bytes, "
                 f"{rebalance['migration_s'] * 1e3:.2f} ms modeled)")
    mp = results["mp_speedup"]
    gate = ("gate applies" if mp["gate_applies"]
            else f"gate needs >= {MP_GATE_MIN_CPUS} cores")
    lines.append(f"{'mp_speedup':<18} "
                 f"{mp['speedup_vs_serial']:>13.2f}x vs serial 1-node "
                 f"({mp['host_cpus']} cpus; {gate})")
    render_identity_lines(
        results, ("node_equivalence", "executor_identity",
                  "rebalance_residency"), lines)
    return render_tail(results, lines)
