"""Experiment definitions: one function per paper table/figure + ablations.

Every function builds fresh simulated hardware, runs the workload the
paper describes (2 GB-class streams, dedup ratio 2.0, compression ratio
2.0, 4 KiB chunks — scaled by ``n_chunks`` so CI stays fast; pass
``n_chunks=524288`` for the full 2 GB), and returns structured rows.
The ``benchmarks/`` pytest files print these through
:mod:`~repro.bench.reporting` and assert the paper's shape.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.calibration import CalibrationResult, calibrate_mode, run_mode
from repro.core.config import PipelineConfig
from repro.core.modes import IntegrationMode
from repro.core.stats import PipelineReport
from repro.compression.lzss import LzssCodec
from repro.compression.postprocess import refine_to_container
from repro.cpu.costs import DEFAULT_COSTS
from repro.cpu.model import CpuSpec, I7_2600K, SimCpu
from repro.dedup.bins import BinTable
from repro.dedup.gpu_index import GpuBinIndex
from repro.dedup.replacement import (
    FifoReplacement,
    LruReplacement,
    RandomReplacement,
    ReplacementPolicy,
)
from repro.gpu.device import GpuDevice, GpuSpec
from repro.gpu.kernels.lz import SegmentLzKernel
from repro.sim import Environment
from repro.storage.block import BlockRequest, RequestKind
from repro.storage.ssd import SAMSUNG_SSD_830, SsdModel
from repro.workload.datagen import BlockContentGenerator
from repro.workload.patterns import ZipfPattern
from repro.workload.vdbench import VdbenchStream

#: The paper's SSD yardstick, quoted everywhere ("about 80 K IOPS").
SSD_IOPS = SAMSUNG_SSD_830.write_iops_4k


def registry() -> dict[str, callable]:
    """Experiment id -> zero-argument callable (CLI / tooling hook)."""
    return {
        "e1": e1_indexing,
        "e2": e2_dedup,
        "e3": e3_compression,
        "e4": e4_integration,
        "e5": e5_workflow,
        "a1": a1_thread_scaling,
        "a2": a2_prefix_truncation,
        "a3": a3_bin_buffer,
        "a4": a4_replacement,
        "a5": a5_calibration,
        "a6": a6_inline_vs_background,
        "a7": a7_segment_sweep,
        "a8-lock": a8_index_locking,
        "a8-policy": a8_offload_policy,
        "a9": a9_restart,
        "a10": a10_read_path,
        "a11": a11_kernel_variants,
        "a12": a12_chunking_shift,
        "a13": a13_batch_sweep,
        "a14": a14_ftl_endurance,
        "a15": a15_delta_reduction,
        "a16": a16_tenant_mix,
        "a17": a17_cache_contention,
    }


def _fingerprint(n: int) -> bytes:
    return hashlib.sha1(n.to_bytes(8, "big")).digest()


# ---------------------------------------------------------------------------
# E1 — §3.1(3): CPU vs GPU indexing execution time (the preliminary
# experiment that decides the GPU is only an indexing co-processor).
# ---------------------------------------------------------------------------

@dataclass
class E1Row:
    """One batch size's CPU-vs-GPU indexing comparison."""

    batch: int
    cpu_seconds: float
    gpu_seconds: float

    @property
    def cpu_advantage(self) -> float:
        """How many times faster the CPU batch completes."""
        return self.gpu_seconds / self.cpu_seconds


def e1_indexing(batch_sizes: Sequence[int] = (16, 32, 48, 64, 128, 256),
                n_entries: int = 65536, prefix_bytes: int = 1,
                hit_fraction: float = 0.5) -> list[E1Row]:
    """Time one indexing batch on the CPU and on the GPU.

    Both sides hold the same ``n_entries`` fingerprints ("The number of
    hash table entries used for indexing remains the same on the CPU and
    GPU for a fair comparison").
    """
    costs = DEFAULT_COSTS
    cpu_table = BinTable(prefix_bytes=prefix_bytes)
    gpu_table = GpuBinIndex(prefix_bytes=prefix_bytes, bin_capacity=8192)
    for i in range(n_entries):
        cpu_table.insert(_fingerprint(i), True)
        gpu_table.insert(_fingerprint(i))

    rows = []
    for batch in batch_sizes:
        hits = int(batch * hit_fraction)
        queries = [_fingerprint(i) for i in range(hits)] + \
            [_fingerprint(n_entries + i) for i in range(batch - hits)]

        # -- CPU: dispatch the batch across the thread pool --
        env = Environment()
        cpu = SimCpu(env)

        def lookup_task(fingerprint):
            depth = cpu_table.bin_depth(fingerprint)
            yield from cpu.execute(costs.bin_tree_probe(depth))
            cpu_table.lookup(fingerprint)

        def cpu_batch():
            yield from cpu.execute(costs.dispatch_per_batch)
            tasks = [env.process(lookup_task(q)) for q in queries]
            yield env.all_of(tasks)

        done = env.process(cpu_batch())
        env.run(until=done)
        cpu_seconds = env.now

        # -- GPU: one kernel launch --
        env = Environment()
        gpu = GpuDevice(env)
        kernel = gpu_table.make_kernel(queries)

        def gpu_batch():
            yield from gpu.launch(kernel)

        done = env.process(gpu_batch())
        env.run(until=done)
        rows.append(E1Row(batch=batch, cpu_seconds=cpu_seconds,
                          gpu_seconds=env.now))
    return rows


# ---------------------------------------------------------------------------
# E2 — §4(1): parallel deduplication throughput.
# ---------------------------------------------------------------------------

def e2_dedup(n_chunks: int = 65536,
             dedup_ratio: float = 2.0) -> dict[str, PipelineReport]:
    """Dedup-only pipeline: CPU-only versus GPU-assisted."""
    results = {}
    for label, mode in (("cpu_only", IntegrationMode.CPU_ONLY),
                        ("gpu_assisted", IntegrationMode.GPU_DEDUP)):
        config = PipelineConfig(mode=mode, enable_compression=False)
        results[label] = run_mode(mode, n_chunks, base_config=config,
                                  dedup_ratio=dedup_ratio)
    return results


# ---------------------------------------------------------------------------
# E3 — §4(2): parallel compression throughput vs compression ratio.
# ---------------------------------------------------------------------------

@dataclass
class E3Row:
    """One compression-ratio point of the E3 sweep."""

    comp_ratio: float
    cpu_iops: float
    gpu_iops: float
    ssd_iops: float = SSD_IOPS

    @property
    def gpu_advantage(self) -> float:
        return self.gpu_iops / self.cpu_iops


def e3_compression(ratios: Sequence[float] = (1.2, 1.5, 2.0, 3.0, 4.0),
                   n_chunks: int = 32768) -> list[E3Row]:
    """Compression-only pipeline across the compressibility dial."""
    rows = []
    for ratio in ratios:
        cpu_cfg = PipelineConfig(mode=IntegrationMode.CPU_ONLY,
                                 enable_dedup=False)
        cpu = run_mode(IntegrationMode.CPU_ONLY, n_chunks,
                       base_config=cpu_cfg, comp_ratio=ratio)
        gpu_cfg = PipelineConfig(mode=IntegrationMode.GPU_COMP,
                                 enable_dedup=False)
        gpu = run_mode(IntegrationMode.GPU_COMP, n_chunks,
                       base_config=gpu_cfg, comp_ratio=ratio)
        rows.append(E3Row(comp_ratio=ratio, cpu_iops=cpu.iops,
                          gpu_iops=gpu.iops))
    return rows


# ---------------------------------------------------------------------------
# E4 — Fig. 2 / §4(3): throughput of the four integration modes.
# ---------------------------------------------------------------------------

def e4_integration(n_chunks: int = 65536, dedup_ratio: float = 2.0,
                   comp_ratio: float = 2.0
                   ) -> dict[IntegrationMode, PipelineReport]:
    """The integrated pipeline in every mode (regenerates Fig. 2)."""
    return {mode: run_mode(mode, n_chunks, dedup_ratio=dedup_ratio,
                           comp_ratio=comp_ratio)
            for mode in IntegrationMode.all_modes()}


# ---------------------------------------------------------------------------
# E5 — Fig. 1: the integrated workflow, every decision edge exercised.
# ---------------------------------------------------------------------------

def e5_workflow(n_chunks: int = 32768) -> PipelineReport:
    """One GPU_BOTH run; its counters are Fig. 1's edges."""
    return run_mode(IntegrationMode.GPU_BOTH, n_chunks)


# ---------------------------------------------------------------------------
# A1 — §3.1(1): lock-free bin scaling across thread counts.
# ---------------------------------------------------------------------------

@dataclass
class A1Row:
    """Dedup throughput at one CPU thread count."""

    threads: int
    iops: float


def a1_thread_scaling(thread_counts: Sequence[int] = (1, 2, 4, 8),
                      n_chunks: int = 16384) -> list[A1Row]:
    """CPU-only dedup throughput as the core count grows.

    Bins mean no locks, so throughput should scale near-linearly until
    SMT sharing flattens it — which is the design argument of §3.1(1).
    """
    rows = []
    for threads in thread_counts:
        # Up to 4 threads we add physical cores (the i7-2600K has 4);
        # beyond that the extra threads are SMT siblings and run derated.
        cores = min(threads, I7_2600K.cores)
        spec = CpuSpec(name=f"{threads}T", cores=cores, threads=threads,
                       freq_hz=I7_2600K.freq_hz,
                       smt_derate=(I7_2600K.smt_derate
                                   if threads > cores else 1.0))
        config = PipelineConfig(mode=IntegrationMode.CPU_ONLY,
                                enable_compression=False)
        report = run_mode(IntegrationMode.CPU_ONLY, n_chunks,
                          base_config=config, cpu_spec=spec,
                          gpu_spec=None)
        rows.append(A1Row(threads=threads, iops=report.iops))
    return rows


def a1_bin_balance(prefix_bytes_options: Sequence[int] = (1, 2),
                   n_entries: int = 100_000) -> dict[int, float]:
    """Occupancy balance of the bin partition (1.0 = perfectly even)."""
    balance = {}
    for prefix_bytes in prefix_bytes_options:
        table = BinTable(prefix_bytes=prefix_bytes)
        for i in range(n_entries):
            table.insert(_fingerprint(i), True)
        balance[prefix_bytes] = table.balance()
    return balance


# ---------------------------------------------------------------------------
# A2 — §3.1(1): prefix truncation memory arithmetic.
# ---------------------------------------------------------------------------

@dataclass
class A2Row:
    """Index memory at one prefix size, at the paper's 4 TB scale."""

    prefix_bytes: int
    entries: int
    memory_bytes: int
    saved_vs_full: int


def a2_prefix_truncation(capacity_bytes: int = 4 * 1024**4,
                         chunk_bytes: int = 8 * 1024,
                         metadata_bytes: int = 12) -> list[A2Row]:
    """The paper's sizing: 4 TB / 8 KB chunks, 32 B entries => 16 GB,
    minus 1 GB per two prefix bytes dropped."""
    entries = capacity_bytes // chunk_bytes
    rows = []
    for prefix_bytes in (0, 1, 2, 4):
        key_bytes = 20 - prefix_bytes
        memory = entries * (key_bytes + metadata_bytes)
        rows.append(A2Row(prefix_bytes=prefix_bytes, entries=entries,
                          memory_bytes=memory,
                          saved_vs_full=entries * prefix_bytes))
    return rows


# ---------------------------------------------------------------------------
# A3 — §3.3: bin-buffer size vs locality hits and flush sequentiality.
# ---------------------------------------------------------------------------

@dataclass
class A3Row:
    """One bin-buffer budget point."""

    buffer_total: int
    buffer_hit_fraction: float
    mean_flush_chunks: float
    iops: float


def a3_bin_buffer(totals: Sequence[int] = (512, 2048, 8192, 32768),
                  n_chunks: int = 32768) -> list[A3Row]:
    """Sweep the bin-buffer budget in a CPU-only dedup run."""
    rows = []
    for total in totals:
        config = PipelineConfig(mode=IntegrationMode.CPU_ONLY,
                                enable_compression=False,
                                bin_buffer_total=total)
        report = run_mode(IntegrationMode.CPU_ONLY, n_chunks,
                          base_config=config)
        dups = report.duplicates_found
        buffer_fraction = (report.counters["buffer_hits"] / dups
                           if dups else 0.0)
        flushes = report.counters["flushes"] or 1
        rows.append(A3Row(
            buffer_total=total,
            buffer_hit_fraction=buffer_fraction,
            mean_flush_chunks=report.counters["uniques"] / flushes,
            iops=report.iops))
    return rows


# ---------------------------------------------------------------------------
# A4 — §3.3: GPU-bin replacement policy comparison.
# ---------------------------------------------------------------------------

@dataclass
class A4Row:
    """One replacement policy's hit rate under a constrained GPU bin."""

    policy: str
    hit_rate: float
    evictions: int


def a4_replacement(n_uniques: int = 4096, n_lookups: int = 30000,
                   bin_capacity: int = 8, prefix_bytes: int = 1,
                   skew: float = 1.1, seed: int = 5) -> list[A4Row]:
    """Drive each policy with a Zipf-skewed lookup stream over bins far
    smaller than the working set, so eviction choices matter."""
    policies: list[tuple[str, ReplacementPolicy]] = [
        ("random", RandomReplacement(seed=seed)),
        ("fifo", FifoReplacement()),
        ("lru", LruReplacement()),
    ]
    rows = []
    for name, policy in policies:
        index = GpuBinIndex(prefix_bytes=prefix_bytes,
                            bin_capacity=bin_capacity, policy=policy)
        pattern = ZipfPattern(n_uniques, skew=skew, seed=seed)
        for _ in range(n_lookups):
            fingerprint = _fingerprint(pattern.next_slot())
            hit = index.lookup_host([fingerprint])[0]
            if not hit:
                index.insert(fingerprint)
        rows.append(A4Row(policy=name, hit_rate=index.hit_rate(),
                          evictions=index.evictions))
    return rows


# ---------------------------------------------------------------------------
# A5 — §4(3): dummy-I/O calibration across platforms.
# ---------------------------------------------------------------------------

#: A platform whose GPU is too weak to beat 8 CPU threads: few lanes,
#: slow clock, painful launch overheads (an entry-level 2012 dGPU).
WEAK_GPU = GpuSpec(
    name="weak dGPU", compute_units=2, lanes_per_cu=32, freq_hz=500e6,
    mem_bandwidth_bps=20e9, mem_capacity_bytes=512 * 1024**2,
    launch_overhead_s=250e-6, sync_overhead_s=250e-6, occupancy=0.2)

#: A platform with a much beefier CPU than the testbed.
BIG_CPU = CpuSpec(name="32-thread server", cores=16, threads=32,
                  freq_hz=2.8e9)


def a5_calibration(dummy_chunks: int = 8192
                   ) -> dict[str, CalibrationResult]:
    """Calibrate the integration mode on three platforms."""
    return {
        "testbed": calibrate_mode(dummy_chunks=dummy_chunks),
        "weak_gpu": calibrate_mode(gpu_spec=WEAK_GPU,
                                   dummy_chunks=dummy_chunks),
        "big_cpu": calibrate_mode(cpu_spec=BIG_CPU,
                                  dummy_chunks=dummy_chunks),
    }


# ---------------------------------------------------------------------------
# A6 — §1 motivation: inline vs background reduction endurance.
# ---------------------------------------------------------------------------

@dataclass
class A6Result:
    """NAND programming volume for the two reduction strategies."""

    logical_bytes: int
    inline_nand_bytes: int
    background_nand_bytes: int

    @property
    def endurance_advantage(self) -> float:
        """How many times less NAND the inline strategy programs."""
        return self.background_nand_bytes / self.inline_nand_bytes


def a6_inline_vs_background(n_chunks: int = 32768,
                            dedup_ratio: float = 2.0,
                            comp_ratio: float = 2.0) -> A6Result:
    """Inline reduces then writes once; background writes everything raw
    and later rewrites the reduced copy ("this generates more write I/O
    than systems without the data reduction operations")."""
    inline = run_mode(IntegrationMode.CPU_ONLY, n_chunks,
                      dedup_ratio=dedup_ratio, comp_ratio=comp_ratio)
    logical = inline.bytes_in

    # Background: land the full stream raw first, then rewrite the
    # reduced form the offline pass produces.
    env = Environment()
    ssd = SsdModel(env)

    def writer():
        for _ in range(n_chunks):
            yield from ssd.submit(BlockRequest(
                RequestKind.WRITE, 0, 4096, sequential=True))
        # Offline pass rewrites the reduced data.
        reduced = int(logical / inline.reduction_ratio)
        yield from ssd.submit(BlockRequest(
            RequestKind.WRITE, 0, max(4096, reduced), sequential=True))

    env.process(writer())
    env.run()
    return A6Result(logical_bytes=logical,
                    inline_nand_bytes=inline.nand_bytes_written,
                    background_nand_bytes=ssd.nand_bytes_written)


# ---------------------------------------------------------------------------
# A8 — §5 related-work baselines: locked global index (P-Dedupe-class)
# and GPU-only indexing (GHOST-class).
# ---------------------------------------------------------------------------

@dataclass
class A8LockRow:
    """Bins vs one global index lock, dedup-only at full load."""

    discipline: str
    iops: float
    mean_latency_s: float


def a8_index_locking(n_chunks: int = 16384) -> list[A8LockRow]:
    """The paper's lock-free bins against a conventional locked table."""
    rows = []
    for discipline in ("bins", "global"):
        config = PipelineConfig(mode=IntegrationMode.CPU_ONLY,
                                enable_compression=False,
                                index_locking=discipline)
        report = run_mode(IntegrationMode.CPU_ONLY, n_chunks,
                          base_config=config)
        rows.append(A8LockRow(discipline=discipline, iops=report.iops,
                              mean_latency_s=report.mean_latency_s))
    return rows


@dataclass
class A8PolicyRow:
    """Offload policy under light, paced load (latency view)."""

    policy: str
    iops: float
    mean_latency_s: float
    peak_latency_s: float


def a8_offload_policy(n_chunks: int = 8192,
                      arrival_rate_iops: float = 50e3
                      ) -> list[A8PolicyRow]:
    """The paper's saturation rule vs GHOST-style always-offload.

    Below CPU saturation the paper's rule keeps indexing local and
    cheap; forcing every lookup through GPU batches pays a batch-fill +
    launch round trip per chunk — the critique in §5 of GPU-only
    indexing designs.
    """
    rows = []
    for policy in ("saturation", "always"):
        config = PipelineConfig(mode=IntegrationMode.GPU_DEDUP,
                                enable_compression=False,
                                gpu_index_policy=policy,
                                arrival_rate_iops=arrival_rate_iops)
        report = run_mode(IntegrationMode.GPU_DEDUP, n_chunks,
                          base_config=config)
        rows.append(A8PolicyRow(policy=policy, iops=report.iops,
                                mean_latency_s=report.mean_latency_s,
                                peak_latency_s=report.peak_latency_s))
    return rows


# ---------------------------------------------------------------------------
# A9 — §3.1(1): RAM-only index across a restart ("not a big deal").
# ---------------------------------------------------------------------------

@dataclass
class A9Result:
    """Dedup effectiveness with and without a mid-stream restart."""

    baseline_dedup_ratio: float
    restarted_dedup_ratio: float
    baseline_physical_bytes: int
    restarted_physical_bytes: int
    duplicates_missed: int

    @property
    def space_overhead(self) -> float:
        """Extra physical bytes caused by the lost index."""
        return (self.restarted_physical_bytes
                / self.baseline_physical_bytes) - 1.0


def _run_dedup_stream(stream_chunks, restart_at: Optional[int]) -> tuple:
    """Feed a descriptor stream through a functional dedup engine."""
    from repro.dedup.engine import DedupEngine

    engine = DedupEngine(prefix_bytes=1, bin_buffer_total=2048)
    missed = 0
    known: set[bytes] = set()
    for i, chunk in enumerate(stream_chunks):
        if restart_at is not None and i == restart_at:
            engine.restart()
        outcome = engine.cpu_index(chunk)
        if outcome.duplicate:
            engine.commit_duplicate(chunk)
        else:
            if chunk.fingerprint in known:
                missed += 1  # a duplicate the lost index cannot see
            chunk.compressed_size = max(1, int(
                chunk.size / chunk.effective_ratio()))
            engine.commit_unique(chunk)
        known.add(chunk.fingerprint)
    engine.drain()
    return engine, missed


def a9_restart(n_chunks: int = 20000, dedup_ratio: float = 2.0,
               seed: int = 17) -> A9Result:
    """Measure the dedup the RAM-only index loses across one restart.

    The same stream runs twice: uninterrupted, and with a restart at the
    midpoint.  The gap is the paper's "cannot find some duplicate data"
    — bounded, because only pre-restart content is affected and the
    index rebuilds as new (post-restart) content flows.
    """
    def fresh_stream():
        return VdbenchStream(dedup_ratio=dedup_ratio, comp_ratio=2.0,
                             seed=seed).chunks(n_chunks)

    baseline, _ = _run_dedup_stream(fresh_stream(), restart_at=None)
    restarted, missed = _run_dedup_stream(fresh_stream(),
                                          restart_at=n_chunks // 2)
    return A9Result(
        baseline_dedup_ratio=baseline.metadata.dedup_ratio(),
        restarted_dedup_ratio=restarted.metadata.dedup_ratio(),
        baseline_physical_bytes=baseline.metadata.physical_bytes,
        restarted_physical_bytes=restarted.metadata.physical_bytes,
        duplicates_missed=missed,
    )


# ---------------------------------------------------------------------------
# A11 — §3.1(2): simple vs local-memory-tiled lookup kernel.
# ---------------------------------------------------------------------------

@dataclass
class A11Row:
    """Launch time of both lookup-kernel variants at one batch size."""

    batch: int
    simple_seconds: float
    tiled_seconds: float
    simple_global_bytes: float
    tiled_global_bytes: float


def a11_kernel_variants(batch_sizes: Sequence[int] = (64, 256, 1024),
                        n_entries: int = 65536,
                        prefix_bytes: int = 1,
                        seed: int = 9) -> list[A11Row]:
    """Compare the per-thread global scan against the workgroup-tiled
    local-memory kernel across batch sizes.

    With a 1-byte prefix, batches of a few hundred queries hit the same
    256 bins repeatedly; the tiled kernel stages each bin once instead
    of streaming it per query, which is the §3.1(2) local-memory
    argument in numbers.
    """
    import random as _random

    index = GpuBinIndex(prefix_bytes=prefix_bytes, bin_capacity=8192)
    for i in range(n_entries):
        index.insert(_fingerprint(i))
    rng = _random.Random(seed)

    rows = []
    for batch in batch_sizes:
        queries = [_fingerprint(rng.randrange(2 * n_entries))
                   for _ in range(batch)]
        env = Environment()
        gpu = GpuDevice(env)
        simple = index.make_kernel(queries)
        tiled = index.make_kernel(queries, tiled=True)
        rows.append(A11Row(
            batch=batch,
            simple_seconds=gpu.launch_time(simple),
            tiled_seconds=gpu.launch_time(tiled),
            simple_global_bytes=simple.cost().bytes_read,
            tiled_global_bytes=tiled.cost().bytes_read,
        ))
    return rows


# ---------------------------------------------------------------------------
# A15 — delta compression for near-duplicates (extension; DEC-class).
# ---------------------------------------------------------------------------

@dataclass
class A15Row:
    """Space outcome of one reduction stack on a near-duplicate stream."""

    stack: str
    physical_bytes: int
    reduction_ratio: float
    deltas_encoded: int = 0


def a15_delta_reduction(n_chunks: int = 400, exact_dup: float = 0.25,
                        near_dup: float = 0.35, edits: int = 6,
                        comp_ratio: float = 2.0,
                        seed: int = 41) -> list[A15Row]:
    """Near-duplicate-heavy stream through three reduction stacks.

    Deduplication removes exact duplicates only; the stream's *near*
    duplicates (point-edited copies, the VM-image/record-update pattern)
    defeat it.  Resemblance sketches + delta encoding (DEC-class, the
    literature around the paper) capture them: the delta of a 6-edit
    4 KiB chunk is tens of bytes.
    """
    import random as _random

    from repro.compression.delta import (
        DeltaCodec,
        SimilarityIndex,
        sketch,
    )
    from repro.compression.lzss import LzssCodec

    rng = _random.Random(seed)
    content = BlockContentGenerator(comp_ratio, seed=seed)
    bases: list[bytes] = []
    stream: list[bytes] = []
    for i in range(n_chunks):
        draw = rng.random()
        if bases and draw < exact_dup:
            stream.append(bases[rng.randrange(len(bases))])
        elif bases and draw < exact_dup + near_dup:
            base = bytearray(bases[rng.randrange(len(bases))])
            for _ in range(edits):
                base[rng.randrange(len(base))] = rng.randrange(256)
            stream.append(bytes(base))
        else:
            block = content.make_block(4096, salt=i)
            bases.append(block)
            stream.append(block)

    lz = LzssCodec()
    delta_codec = DeltaCodec()

    # Stack 1: LZ only.
    lz_only = sum(min(len(lz.encode(chunk)), len(chunk))
                  for chunk in stream)

    # Stack 2: exact dedup + LZ.
    import hashlib as _hashlib
    seen: set[bytes] = set()
    dedup_lz = 0
    for chunk in stream:
        digest = _hashlib.sha1(chunk).digest()
        if digest in seen:
            continue
        seen.add(digest)
        dedup_lz += min(len(lz.encode(chunk)), len(chunk))

    # Stack 3: exact dedup + similarity delta + LZ.
    seen = set()
    stored: dict[int, bytes] = {}
    similarity = SimilarityIndex()
    dedup_delta_lz = 0
    deltas = 0
    for chunk in stream:
        digest = _hashlib.sha1(chunk).digest()
        if digest in seen:
            continue
        seen.add(digest)
        chunk_sketch = sketch(chunk)
        reference_id = similarity.find_similar(chunk_sketch)
        if reference_id is not None:
            delta = delta_codec.encode(stored[reference_id], chunk)
            lz_size = min(len(lz.encode(chunk)), len(chunk))
            if len(delta) < lz_size:
                dedup_delta_lz += len(delta)
                deltas += 1
                continue
        chunk_id = len(stored)
        stored[chunk_id] = chunk
        similarity.insert(chunk_id, chunk_sketch)
        dedup_delta_lz += min(len(lz.encode(chunk)), len(chunk))

    logical = n_chunks * 4096
    return [
        A15Row("lz_only", lz_only, logical / lz_only),
        A15Row("dedup+lz", dedup_lz, logical / dedup_lz),
        A15Row("dedup+delta+lz", dedup_delta_lz,
               logical / dedup_delta_lz, deltas_encoded=deltas),
    ]


# ---------------------------------------------------------------------------
# A14 — FTL-level compound endurance (extension of the §1 motivation).
# ---------------------------------------------------------------------------

@dataclass
class A14Row:
    """Flash wear for one storage strategy under the same logical churn."""

    strategy: str
    utilization: float
    write_amplification: float
    nand_pages: int
    erases: int


def a14_ftl_endurance(blocks: int = 64, pages_per_block: int = 64,
                      working_set_fraction: float = 0.85,
                      reduction_ratio: float = 4.0,
                      churn_rounds: int = 8,
                      seed: int = 31) -> list[A14Row]:
    """The same logical overwrite churn on a raw vs a reduced device.

    Inline reduction helps flash endurance *twice*: it shrinks the host
    write stream by the reduction ratio, AND the emptier device gives
    the garbage collector easy victims, so each remaining write carries
    a lower write-amplification factor.  This experiment runs identical
    logical churn (working set ~85% of raw capacity) against a
    page-mapped FTL with and without a 4x (dedup 2.0 x comp 2.0)
    reduction in front of it.
    """
    import random as _random

    from repro.storage.ftl import Ftl, FtlSpec

    total_pages = blocks * pages_per_block
    logical_pages = int(total_pages * working_set_fraction)
    rows = []
    for strategy, factor in (("raw", 1.0), ("reduced", reduction_ratio)):
        ftl = Ftl(FtlSpec(blocks=blocks, pages_per_block=pages_per_block))
        physical_pages = max(1, int(logical_pages / factor))
        rng = _random.Random(seed)
        # Initial fill.
        ftl.write_run(list(range(physical_pages)))
        # Churn: every logical overwrite lands as 1/factor physical
        # writes on average (duplicates and compression absorb the rest).
        # The target list is drawn up front (the FTL never touches the
        # RNG, so the draw order is unchanged) and written as one run —
        # state-identical to per-page write() calls.
        churn_writes = int(logical_pages * churn_rounds / factor)
        ftl.write_run([rng.randrange(physical_pages)
                       for _ in range(churn_writes)])
        ftl.check_invariants()
        rows.append(A14Row(
            strategy=strategy,
            utilization=ftl.utilization,
            write_amplification=ftl.write_amplification(),
            nand_pages=ftl.nand_pages_written,
            erases=ftl.erases,
        ))
    return rows


# ---------------------------------------------------------------------------
# A13 — compression batch size on the shared device queue (extension).
# ---------------------------------------------------------------------------

@dataclass
class A13Row:
    """One (mode, batch-size) point of the sharing-trade sweep."""

    mode: IntegrationMode
    comp_batch: int
    iops: float
    gpu_utilization: float
    gpu_mean_queue_wait_s: float


def a13_batch_sweep(batch_sizes: Sequence[int] = (32, 64, 128, 256, 512),
                    n_chunks: int = 32768) -> list[A13Row]:
    """Sweep the compression batch size in GPU_COMP and GPU_BOTH.

    The batch size sets the device-queue occupancy per launch, which is
    the whole Fig. 2 mechanism: small batches drown in launch overhead,
    large batches block the queue for milliseconds and starve the
    latency-critical index lookups GPU_BOTH interleaves.  The paper's
    operating regime (2012-era launch overheads pushing batches large)
    makes GPU_COMP win; the sweep also shows the *extension* result —
    at the sweet spot, a tuned GPU_BOTH recovers and can edge past
    GPU_COMP, because contention shrinks faster than the offload gain.

    (Priority scheduling on the queue — ``gpu_queue_priority`` — does
    *not* recover GPU_BOTH by itself: index batches wait behind the
    *running* compression kernel, and kernels are not preemptable.)
    """
    rows = []
    for mode in (IntegrationMode.GPU_COMP, IntegrationMode.GPU_BOTH):
        for batch in batch_sizes:
            config = PipelineConfig(mode=mode, gpu_comp_batch=batch)
            report = run_mode(mode, n_chunks, base_config=config)
            rows.append(A13Row(
                mode=mode, comp_batch=batch, iops=report.iops,
                gpu_utilization=report.gpu_utilization,
                gpu_mean_queue_wait_s=report.gpu_mean_queue_wait_s))
    return rows


# ---------------------------------------------------------------------------
# A12 — chunking strategies under insertion shift (extension; the
# dedup-literature motivation for content-defined chunking).
# ---------------------------------------------------------------------------

@dataclass
class A12Row:
    """Dedup of a shifted re-write under one chunking strategy."""

    strategy: str
    chunks_second_pass: int
    duplicates_found: int

    @property
    def dedup_fraction(self) -> float:
        if not self.chunks_second_pass:
            return 0.0
        return self.duplicates_found / self.chunks_second_pass


def a12_chunking_shift(stream_bytes: int = 96 * 1024,
                       insert_at: int = 5000,
                       seed: int = 13) -> list[A12Row]:
    """Write a stream, then re-write it with a few bytes inserted.

    Fixed-size chunking loses almost all duplicates after the insertion
    (every boundary shifts); content-defined chunking re-synchronizes
    within a chunk or two.  The paper evaluates block workloads (fixed
    4 KiB), but any adoptable dedup system needs CDC for file-like
    streams — hence both chunkers ship and this experiment contrasts
    them.
    """
    import random as _random

    from repro.dedup.chunking import ContentDefinedChunker, FixedChunker
    from repro.dedup.engine import DedupEngine
    from repro.dedup.hashing import fingerprint_chunk

    rng = _random.Random(seed)
    stream = bytes(rng.randrange(256) for _ in range(stream_bytes))
    shifted = stream[:insert_at] + b"INSERTED-BYTES" + stream[insert_at:]

    rows = []
    for strategy, chunker in (
            ("fixed", FixedChunker(4096)),
            ("content_defined", ContentDefinedChunker(avg_size=4096))):
        engine = DedupEngine(prefix_bytes=1)

        def ingest(data: bytes, base: int) -> tuple[int, int]:
            chunks = dups = 0
            for chunk in chunker.chunk(data, base_offset=base):
                fingerprint_chunk(chunk)
                chunks += 1
                if engine.cpu_index(chunk).duplicate:
                    engine.commit_duplicate(chunk)
                    dups += 1
                else:
                    chunk.compressed_size = chunk.size
                    engine.commit_unique(chunk)
            return chunks, dups

        ingest(stream, base=0)
        # Second pass: a shifted copy lands at fresh logical offsets.
        chunks, dups = ingest(shifted, base=2 * len(shifted) + 8192)
        rows.append(A12Row(strategy=strategy, chunks_second_pass=chunks,
                           duplicates_found=dups))
    return rows


# ---------------------------------------------------------------------------
# A10 — read-path cost of reduction (extension; the paper's intro
# motivates primary storage, which serves reads too).
# ---------------------------------------------------------------------------

@dataclass
class A10Row:
    """Read throughput for one serving strategy."""

    strategy: str
    iops: float
    mean_latency_s: float
    cpu_utilization: float
    ssd_utilization: float


def a10_read_path(n_chunks: int = 12000, n_reads: int = 20000,
                  seed: int = 23) -> list[A10Row]:
    """Random chunk reads from a reduced volume vs a raw volume.

    Populates metadata through the functional dedup engine, then serves
    a uniform random read workload through the timed read pipeline —
    once against the reduced store (compressed extents + CPU decode) and
    once against an equivalent raw store.
    """
    import random as _random

    from repro.core.readpath import ReadPipeline

    stream = VdbenchStream(dedup_ratio=2.0, comp_ratio=2.0, seed=seed)
    engine, _ = _run_dedup_stream(stream.chunks(n_chunks),
                                  restart_at=None)
    rng = _random.Random(seed)
    offsets = [rng.randrange(n_chunks) * 4096 for _ in range(n_reads)]

    rows = []
    for strategy in ("reduced", "raw"):
        env = Environment()
        if strategy == "reduced":
            pipeline = ReadPipeline(env, engine.metadata)
        else:
            raw_metadata = _raw_equivalent_store(engine.metadata,
                                                 n_chunks)
            pipeline = ReadPipeline(env, raw_metadata, decompress=False)
        report = pipeline.run(offsets)
        rows.append(A10Row(strategy=strategy, iops=report.iops,
                           mean_latency_s=report.mean_latency_s,
                           cpu_utilization=report.cpu_utilization,
                           ssd_utilization=report.ssd_utilization))
    return rows


def _raw_equivalent_store(source, n_chunks: int):
    """A metadata store serving the same offsets with unreduced chunks."""
    from repro.storage.metadata import MetadataStore

    raw = MetadataStore()
    seen: set[bytes] = set()
    for offset in range(0, n_chunks * 4096, 4096):
        record = source.resolve(offset)
        if record.fingerprint not in seen:
            raw.store_unique(record.fingerprint, record.size,
                             record.size)  # stored uncompressed
            seen.add(record.fingerprint)
        raw.map_logical(offset, record.fingerprint, record.size)
    return raw


# ---------------------------------------------------------------------------
# A7 — §3.2(2): GPU segment count vs compression-ratio loss.
# ---------------------------------------------------------------------------

@dataclass
class A7Row:
    """One segment-count point of the ratio/latency trade."""

    segments: int
    ratio: float
    ratio_loss_vs_serial: float
    kernel_critical_path_s: float


def a7_segment_sweep(segment_counts: Sequence[int] = (1, 2, 4, 8, 16),
                     n_blocks: int = 6, target_ratio: float = 2.0,
                     seed: int = 3) -> list[A7Row]:
    """Real payload compression at each segment count.

    More segments = shorter per-thread critical path (latency win) but a
    slightly worse ratio (matches cannot cross into a segment's own
    future) — the §3.2(2) design trade the paper accepts.
    """
    generator = BlockContentGenerator(target_ratio, seed=seed)
    generator.calibrate()
    blocks = [generator.make_block(4096, salt=s) for s in range(n_blocks)]
    serial_codec = LzssCodec()
    serial_ratio = sum(len(b) for b in blocks) / \
        sum(len(serial_codec.encode(b)) for b in blocks)
    device = GpuDevice(Environment())

    rows = []
    for segments in segment_counts:
        compressed = 0
        original = 0
        kernel = SegmentLzKernel(blocks, segments_per_chunk=segments)
        outputs = kernel.execute()
        for block, per_chunk in zip(blocks, outputs):
            blob = refine_to_container(block, per_chunk)
            compressed += len(blob)
            original += len(block)
        ratio = original / compressed
        critical = kernel.cost().critical_path_cycles / \
            device.spec.freq_hz
        rows.append(A7Row(segments=segments, ratio=ratio,
                          ratio_loss_vs_serial=1.0 - ratio / serial_ratio,
                          kernel_critical_path_s=critical))
    return rows


# ---------------------------------------------------------------------------
# A16 — tenancy ablation: inline hit rate vs tenant-mix composition.
# ---------------------------------------------------------------------------

@dataclass
class A16Row:
    """One mix composition's shared-vs-prioritized comparison."""

    hot_weight: float
    hot_share: float
    shared_hit_rate: float
    prioritized_hit_rate: float

    @property
    def prioritized_gain(self) -> float:
        """Aggregate-hit-rate multiple of prioritized over shared."""
        if self.shared_hit_rate == 0:
            return float("inf")
        return self.prioritized_hit_rate / self.shared_hit_rate


def a16_tenant_mix(hot_weights: Sequence[float] = (0.25, 1.0, 4.0),
                   n_chunks: int = 4096,
                   cache_entries: int = 96) -> list[A16Row]:
    """Sweep the hot tenant's traffic share; compare admission policies.

    The HPDedup claim under composition drift: however much of the
    interleaved stream the high-locality tenant contributes, a
    locality-prioritized cache beats a shared LRU on aggregate inline
    hit rate — and the edge is largest when the cold scan dominates
    (small ``hot_weight``), because that is when LRU recency evicts
    exactly the entries worth keeping.
    """
    from repro.tenancy import TenantMix, TenantSpec
    from repro.tenancy.runner import run_tenant_mix

    rows = []
    for hot_weight in hot_weights:
        mix = TenantMix(tenants=(
            TenantSpec(name="hot", seed=11, dedup_ratio=3.0,
                       locality=0.95, working_set=64,
                       weight=hot_weight),
            TenantSpec(name="cold", seed=22, dedup_ratio=1.05,
                       locality=0.0, working_set=1 << 16),
        ), seed=7)
        hit_rates = {}
        for policy in ("shared_lru", "prioritized"):
            config = PipelineConfig(
                tenancy_policy=policy,
                tenancy_cache_entries=cache_entries)
            report = run_tenant_mix(mix, IntegrationMode.CPU_ONLY,
                                    n_chunks, base_config=config)
            hit_rates[policy] = report.inline_hit_rate
        rows.append(A16Row(
            hot_weight=hot_weight,
            hot_share=hot_weight / (hot_weight + 1.0),
            shared_hit_rate=hit_rates["shared_lru"],
            prioritized_hit_rate=hit_rates["prioritized"]))
    return rows


# ---------------------------------------------------------------------------
# A17 — tenancy ablation: cache-contention curve (hit rate vs capacity).
# ---------------------------------------------------------------------------

@dataclass
class A17Row:
    """One inline-cache capacity point, both policies."""

    cache_entries: int
    shared_hit_rate: float
    prioritized_hit_rate: float
    recovery_fraction: float

    @property
    def prioritized_gain(self) -> float:
        """Aggregate-hit-rate multiple of prioritized over shared."""
        if self.shared_hit_rate == 0:
            return float("inf")
        return self.prioritized_hit_rate / self.shared_hit_rate


def a17_cache_contention(
        capacities: Sequence[int] = (48, 64, 96, 128, 256),
        n_chunks: int = 4096) -> list[A17Row]:
    """Shrink the inline cache under the committed mixed scenario.

    The contention story: a shared LRU degrades smoothly toward zero
    as the cold scan churns the cache, while prioritized residency
    holds the hot tenant near its working-set ceiling until capacity
    drops below that working set.  Out-of-line compaction keeps the
    *effective* dedup ratio at the oracle throughout — capacity only
    moves the inline/out-of-line split.
    """
    from repro.bench.tenancy import SCENARIO_MIX
    from repro.tenancy.runner import run_tenant_mix

    rows = []
    for capacity in capacities:
        hit_rates = {}
        recovery = 1.0
        for policy in ("shared_lru", "prioritized"):
            config = PipelineConfig(
                tenancy_policy=policy,
                tenancy_cache_entries=capacity)
            report = run_tenant_mix(SCENARIO_MIX,
                                    IntegrationMode.CPU_ONLY,
                                    n_chunks, base_config=config)
            hit_rates[policy] = report.inline_hit_rate
            if policy == "prioritized":
                recovery = report.recovery_fraction
        rows.append(A17Row(
            cache_entries=capacity,
            shared_hit_rate=hit_rates["shared_lru"],
            prioritized_hit_rate=hit_rates["prioritized"],
            recovery_fraction=recovery))
    return rows
