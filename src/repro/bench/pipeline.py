"""Pipeline functional-plane benchmark (``repro bench pipeline``).

The engine bench watches the timed substrate, the dataplane bench the
codec loops, and the dedup bench the index structures; this module
watches the *functional plane of the pipeline itself* — the per-chunk
work that is pure computation, not simulated time: materializing chunks
from the workload stream, the SHA-1 fingerprint pass, codec dispatch,
and the FTL's page-accounting loop.  The batched-functional-plane PR
(``PipelineConfig.batched_functional``) is held to the same two
promises as the earlier fast-path PRs:

1. **Identity** — the pinned golden report sha256 digests are unchanged
   across all four integration modes, *and* the per-chunk reference
   path (``batched_functional=False``) reproduces the same digests, so
   the batched plane is provably a layout change.  Always checked;
   timing-free.
2. **Speed** — the aggregate (geometric-mean) speedup over the four
   functional microbenchmarks is >= 2x the pinned seed baselines.  The
   gate in ``benchmarks/test_p6_pipeline.py`` enforces it behind
   ``REPRO_PERF_TIMING=1``; timings are always measured and written to
   ``BENCH_pipeline.json``.

Scenarios (``--quick`` trims repeats and skips the full-size E4 field
re-run; every identity check still runs):

* **chunk_materialize** — descriptor-mode stream consumption through
  ``VdbenchStream.next_batch`` windows (vs the per-chunk generator);
* **fingerprint_window** — batched SHA-1 pass with the payload-hash
  memo over a dup-heavy payload window (vs per-chunk hashing);
* **codec_dispatch** — grouped codec dispatch (``compress_window``)
  with a warm codec memo over the same window (vs per-chunk compress);
* **destage_account** — FTL fill + churn through ``Ftl.write_run``
  (vs per-page ``write`` calls);
* **golden** — report digests for both feeder paths, all four modes.

The baseline constants below are *wall-clock measurements from one
specific machine at the pre-batching commit* (the per-chunk path over
identical work).  Speedups against them are meaningful on that class
of machine only; the identity checks are meaningful everywhere.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import random
from typing import Any, Optional

from repro.bench.common import (
    attach_profile,
    attach_trace,
    best_of,
    fold_fields_ok,
    rate_entry,
    render_identity_lines,
    render_rate_lines,
    render_tail,
    set_aggregate,
    start_profile,
    write_results,
)
from repro.compression.memo import CodecMemo
from repro.compression.parallel_cpu import CpuCompressor
from repro.dedup.hashing import PayloadHashMemo, fingerprint_window
from repro.storage.ftl import Ftl, FtlSpec
from repro.workload.vdbench import VdbenchStream

#: Pre-batching functional-plane rates (reference container, best-of-N,
#: per-chunk path over the identical workload).  Keys are scenario
#: names; values are the scenario's ops/second.
BASELINE_RATES = {
    "chunk_materialize": 440_366.0,
    "fingerprint_window": 336_787.0,
    "codec_dispatch": 735_080.0,
    "destage_account": 749_340.0,
}

#: The PR's acceptance bar: geometric-mean speedup over the four
#: functional microbenchmarks on the reference machine.
REQUIRED_PIPELINE_SPEEDUP = 2.0

# -- scenario geometry (mirrors the pinned-baseline measurement) -------------

#: chunk_materialize: descriptor chunks consumed per repeat.
MATERIALIZE_CHUNKS = 65_536
#: chunk_materialize: feeder window size.
MATERIALIZE_WINDOW = 512
#: fingerprint/codec: payload chunks per window.
WINDOW_CHUNKS = 1024
#: fingerprint/codec: passes over the window per repeat.
WINDOW_PASSES = 4
#: destage_account: FTL geometry (64 blocks x 64 pages).
FTL_BLOCKS = 64
FTL_PAGES_PER_BLOCK = 64


def _payload_window(count: int = WINDOW_CHUNKS, seed: int = 7) -> list:
    """The dup-heavy payload window shared by the hashing and codec
    scenarios (exactly the corpus the seed baselines were measured on)."""
    stream = VdbenchStream(dedup_ratio=2.0, comp_ratio=2.0, seed=seed,
                           payload=True)
    return list(stream.chunks(count))


# -- scenarios --------------------------------------------------------------

def bench_chunk_materialize(repeats: int = 5,
                            chunks: int = MATERIALIZE_CHUNKS) -> dict:
    """Descriptor-mode stream consumption through batch windows.

    The seed baseline drove ``VdbenchStream.chunks`` one chunk at a
    time; the batched path emits :class:`~repro.chunkbatch.ChunkBatch`
    windows and materializes them through the hoisted fast constructor.
    """
    def run() -> None:
        stream = VdbenchStream(dedup_ratio=2.0, comp_ratio=2.0, seed=42)
        for _ in stream.chunks_batched(chunks, MATERIALIZE_WINDOW):
            pass

    seconds = best_of(run, repeats)
    return rate_entry("chunk_materialize", chunks, seconds,
                       "chunks_per_s", BASELINE_RATES)


def bench_fingerprint_window(repeats: int = 5,
                             passes: int = WINDOW_PASSES) -> dict:
    """Batched SHA-1 pass with the payload-hash memo, dup-heavy window.

    The seed baseline called ``fingerprint_chunk`` per chunk (one fresh
    SHA-1 each); the batched pass resolves duplicate payloads through
    the LRU memo.  The memo is built inside the repeat so every repeat
    pays the cold first pass, exactly like the baseline did.
    """
    window = _payload_window()

    def run() -> None:
        memo = PayloadHashMemo()
        for _ in range(passes):
            fingerprint_window(window, memo=memo)

    seconds = best_of(run, repeats)
    return rate_entry("fingerprint_window", len(window) * passes,
                       seconds, "chunks_per_s", BASELINE_RATES)


def bench_codec_dispatch(repeats: int = 5,
                         passes: int = WINDOW_PASSES) -> dict:
    """Grouped codec dispatch with a warm codec memo, same window.

    The seed baseline compressed chunk-by-chunk against a warm
    :class:`CodecMemo`; the batched dispatch groups the window by
    content key so duplicate payloads replay the group result without
    touching the codec (or even the memo).
    """
    window = _payload_window()
    fingerprint_window(window, memo=PayloadHashMemo())
    # Memo and compressor live across repeats, exactly like the seed
    # baseline measurement: best-of picks the warm-memo repeats, so the
    # scenario measures dispatch, not first-touch encoding.
    comp = CpuCompressor(memo=CodecMemo(capacity=2048))

    def run() -> None:
        for _ in range(passes):
            comp.compress_window(window)

    seconds = best_of(run, repeats)
    return rate_entry("codec_dispatch", len(window) * passes, seconds,
                       "chunks_per_s", BASELINE_RATES)


def bench_destage_account(repeats: int = 5) -> dict:
    """FTL fill + churn through the batched page-accounting run.

    The seed baseline issued one ``Ftl.write`` per page; ``write_run``
    amortizes the per-call dispatch while keeping the GC trigger check
    at every write (state-identical by construction).
    """
    total = FTL_BLOCKS * FTL_PAGES_PER_BLOCK
    fill = list(range(int(total * 0.80)))
    rng = random.Random(5)
    churn = [rng.randrange(len(fill)) for _ in range(len(fill) * 8)]

    def run() -> None:
        ftl = Ftl(FtlSpec(blocks=FTL_BLOCKS,
                          pages_per_block=FTL_PAGES_PER_BLOCK))
        ftl.write_run(fill)
        ftl.write_run(churn)

    seconds = best_of(run, repeats)
    return rate_entry("destage_account", len(fill) + len(churn),
                       seconds, "pages_per_s", BASELINE_RATES)


# -- identity ---------------------------------------------------------------

def reference_report_digests(chunks: Optional[int] = None) -> dict[str, str]:
    """Per-mode report digests through the retained per-chunk path."""
    from repro.bench.dedup import GOLDEN_REPORT_CHUNKS
    from repro.core.calibration import run_mode
    from repro.core.config import PipelineConfig
    from repro.core.modes import IntegrationMode

    chunks = GOLDEN_REPORT_CHUNKS if chunks is None else chunks
    digests: dict[str, str] = {}
    for mode in IntegrationMode.all_modes():
        config = PipelineConfig(mode=mode, batched_functional=False)
        report = dataclasses.asdict(
            run_mode(mode, chunks, base_config=config))
        canonical = json.dumps(report, sort_keys=True)
        digests[mode.value] = hashlib.sha256(
            canonical.encode()).hexdigest()
    return digests


def check_batched_equivalence(chunks: Optional[int] = None) -> dict:
    """Per-chunk reference digests vs the pinned goldens.

    Combined with ``check_golden_reports`` (which runs the default,
    batched path), this proves both feeder paths produce byte-identical
    reports in every integration mode.
    """
    from repro.bench.dedup import GOLDEN_REPORT_CHUNKS, \
        GOLDEN_REPORT_SHA256

    chunks = GOLDEN_REPORT_CHUNKS if chunks is None else chunks
    observed = reference_report_digests(chunks)
    mismatches = {
        mode: {"observed": observed.get(mode), "golden": golden}
        for mode, golden in GOLDEN_REPORT_SHA256.items()
        if observed.get(mode) != golden}
    return {"chunks": chunks, "modes": len(observed),
            "path": "per_chunk_reference",
            "fields_ok": not mismatches,
            **({"mismatches": mismatches} if mismatches else {})}


# -- driver -----------------------------------------------------------------

def run_pipeline_bench(quick: bool = False, profile: bool = False,
                       out_path: Optional[str] = "BENCH_pipeline.json",
                       trace_path: Optional[str] = None) -> dict:
    """Run all scenarios; write ``BENCH_pipeline.json``; return the dict.

    ``quick`` trims repeats and skips the (slow) full-size E4 field
    re-run — the per-mode report-digest checks for *both* feeder paths
    still run, so CI keeps full identity coverage of the batched plane.
    ``trace_path`` additionally runs one traced ``gpu_comp`` pipeline
    (the calibration-best mode the batched feeder serves) and writes
    its Chrome trace there.
    """
    from repro.bench.dedup import check_golden_reports
    from repro.core.modes import IntegrationMode

    profiler = start_profile(profile)
    repeats = 2 if quick else 5
    results: dict[str, Any] = {
        "bench": "pipeline-functional-plane",
        "quick": quick,
        "chunk_materialize": bench_chunk_materialize(repeats=repeats),
        "fingerprint_window": bench_fingerprint_window(repeats=repeats),
        "codec_dispatch": bench_codec_dispatch(repeats=repeats),
        "destage_account": bench_destage_account(repeats=repeats),
        "golden_reports": check_golden_reports(),
        "batched_equivalence": check_batched_equivalence(),
    }
    if not quick:
        from repro.bench.dataplane import check_golden_e4
        results["golden_e4"] = check_golden_e4()
    fold_fields_ok(results, ("golden_reports", "batched_equivalence",
                             "golden_e4"))
    set_aggregate(results, BASELINE_RATES, REQUIRED_PIPELINE_SPEEDUP)
    attach_profile(profiler, results)
    attach_trace(results, trace_path, IntegrationMode.GPU_COMP,
                 2048 if quick else 8192)
    write_results(results, out_path)
    return results


def render_pipeline_bench(results: dict) -> str:
    """Human-readable summary of :func:`run_pipeline_bench` output."""
    lines = []
    units = {"chunk_materialize": "chunks_per_s",
             "fingerprint_window": "chunks_per_s",
             "codec_dispatch": "chunks_per_s",
             "destage_account": "pages_per_s"}
    render_rate_lines(results, units, lines)
    render_identity_lines(
        results, ("golden_reports", "batched_equivalence", "golden_e4"),
        lines)
    return render_tail(results, lines)
