"""Engine hot-path performance benchmark (``repro bench engine``).

This module measures the simulation substrate itself, not the paper's
results: the zero-delay run queue, slotted events, the uncontended
resource fast path, and coalesced CPU charges all exist to make the
timed experiments cheap to run, and this harness is how we keep them
honest.  Three scenarios:

* **event_hops** — processes ping-ponging short timeouts; isolates the
  calendar/step/resume cost per event.
* **resource_churn** — acquire/hold/release cycles on a contended
  :class:`~repro.sim.resources.Resource`; isolates the grant path.
* **e4** — the paper's E4 integration-mode comparison end to end, one
  wall-clock measurement per mode; the number the acceptance criterion
  cares about.

Results are written to ``BENCH_engine.json`` next to the working
directory, together with the pre-optimization baseline measured at the
seed commit on the reference container, so speedups are visible without
checking out old trees.  Pass ``profile=True`` (CLI: ``--profile``) to
wrap the E4 scenario in :mod:`cProfile` and print the top of the
cumulative-time table.

The baseline constants below are *wall-clock measurements from one
specific machine*.  Speedup ratios against them are meaningful on that
class of machine only; the report-identity checksums are meaningful
everywhere.
"""

from __future__ import annotations

import dataclasses
import json
import time
from typing import Any, Generator, Optional

from repro.core.calibration import run_mode
from repro.core.modes import IntegrationMode
from repro.sim import Environment, Resource

#: Wall-clock seconds per E4 mode at 8192 chunks, measured at the seed
#: commit (pre zero-delay-run-queue / pre coalesced-charge engine).
BASELINE_E4_SECONDS = {
    "gpu_both": 1.029,
    "gpu_dedup": 1.091,
    "gpu_comp": 0.869,
    "cpu_only": 0.624,
}

#: Microbenchmark rates at the seed commit (ops per second).
BASELINE_EVENT_HOPS_PER_S = 366_656.0
BASELINE_RESOURCE_ACQ_PER_S = 159_412.0

#: Fields of the E4 reports that must not move when the engine is
#: optimized, with their golden values (identical pre/post change).
GOLDEN_E4_FIELDS = {
    "gpu_both": {
        "dedup_ratio": 2.0009770395701025,
        "comp_ratio": 1.9497470820400633,
        "reduction_ratio": 3.901399144130972,
        "duration_s": 0.06408814525820505,
        "mean_latency_s": 0.007539684226371084,
        "cpu_utilization": 0.8227968879133151,
        "gpu_utilization": 0.6854035321064682,
    },
    "gpu_dedup": {
        "dedup_ratio": 2.0009770395701025,
        "comp_ratio": 1.9497470820400633,
        "reduction_ratio": 3.901399144130972,
        "duration_s": 0.10365331550625258,
        "mean_latency_s": 0.012494412981718658,
        "cpu_utilization": 0.9999235699490805,
        "gpu_utilization": 0.053685844901740526,
    },
    "gpu_comp": {
        "dedup_ratio": 2.0009770395701025,
        "comp_ratio": 1.9497470820400633,
        "reduction_ratio": 3.901399144130972,
        "duration_s": 0.06228813039690541,
        "mean_latency_s": 0.007321062741623775,
        "cpu_utilization": 0.9181410959564286,
        "gpu_utilization": 0.619874118437775,
    },
    "cpu_only": {
        "dedup_ratio": 2.0009770395701025,
        "comp_ratio": 1.9497470820400633,
        "reduction_ratio": 3.901399144130972,
        "duration_s": 0.10797826408307641,
        "mean_latency_s": 0.013057429255372807,
        "cpu_utilization": 0.9999276837067451,
        "gpu_utilization": 0.0,
    },
}

#: Chunk count the golden fields and baseline timings were taken at.
GOLDEN_E4_CHUNKS = 8192


# -- microbenchmarks --------------------------------------------------------

def bench_event_hops(processes: int = 200, hops: int = 500) -> dict:
    """Timeout ping-pong: pure calendar/step/resume cost per event."""
    env = Environment()

    def hopper() -> Generator:
        for _ in range(hops):
            yield env.timeout(1e-6)

    for _ in range(processes):
        env.process(hopper())
    started = time.perf_counter()
    env.run()
    elapsed = time.perf_counter() - started
    total = processes * hops
    return {
        "scenario": "event_hops",
        "events": total,
        "seconds": elapsed,
        "events_per_s": total / elapsed,
        "baseline_events_per_s": BASELINE_EVENT_HOPS_PER_S,
        "speedup": (total / elapsed) / BASELINE_EVENT_HOPS_PER_S,
    }


def bench_resource_churn(processes: int = 100, cycles: int = 500,
                         capacity: int = 8) -> dict:
    """Contended acquire/hold/release churn on a counted resource."""
    env = Environment()
    pool = Resource(env, capacity=capacity, name="churn")

    def churner() -> Generator:
        for _ in range(cycles):
            with pool.request() as req:
                yield req
                yield env.timeout(1e-6)

    for _ in range(processes):
        env.process(churner())
    started = time.perf_counter()
    env.run()
    elapsed = time.perf_counter() - started
    total = processes * cycles
    return {
        "scenario": "resource_churn",
        "acquisitions": total,
        "seconds": elapsed,
        "acq_per_s": total / elapsed,
        "baseline_acq_per_s": BASELINE_RESOURCE_ACQ_PER_S,
        "speedup": (total / elapsed) / BASELINE_RESOURCE_ACQ_PER_S,
    }


# -- the end-to-end scenario ------------------------------------------------

def bench_e4(chunks: int = GOLDEN_E4_CHUNKS, repeats: int = 3,
             profile: bool = False) -> dict:
    """Wall-clock the E4 integration-mode runs; verify golden fields.

    Returns per-mode best-of-``repeats`` timings, speedups against the
    seed-commit baseline (only meaningful at the golden chunk count),
    and a ``fields_ok`` flag confirming the reports still carry the
    golden values — a fast engine that changes the science is a bug,
    not a win.
    """
    profiler = None
    if profile:
        import cProfile
        profiler = cProfile.Profile()

    modes: dict[str, Any] = {}
    fields_ok = True
    # Warm-up run so allocator/bytecode caches don't bill the first mode.
    run_mode(IntegrationMode.all_modes()[0], min(chunks, 2048))
    for mode in IntegrationMode.all_modes():
        best: Optional[float] = None
        report = None
        for _ in range(repeats):
            if profiler is not None:
                profiler.enable()
            started = time.perf_counter()
            report = run_mode(mode, chunks)
            elapsed = time.perf_counter() - started
            if profiler is not None:
                profiler.disable()
            best = elapsed if best is None else min(best, elapsed)
        entry: dict[str, Any] = {"seconds": best, "chunks": chunks}
        golden = GOLDEN_E4_FIELDS.get(mode.value)
        if golden is not None and chunks == GOLDEN_E4_CHUNKS:
            observed = dataclasses.asdict(report)
            mismatches = {k: (observed[k], v) for k, v in golden.items()
                          if observed[k] != v}
            entry["fields_ok"] = not mismatches
            if mismatches:
                entry["mismatches"] = {
                    k: {"observed": o, "golden": g}
                    for k, (o, g) in mismatches.items()}
                fields_ok = False
            baseline = BASELINE_E4_SECONDS[mode.value]
            entry["baseline_seconds"] = baseline
            entry["speedup"] = baseline / best
        modes[mode.value] = entry

    result: dict[str, Any] = {"scenario": "e4", "modes": modes,
                              "fields_ok": fields_ok}
    if chunks == GOLDEN_E4_CHUNKS:
        total = sum(m["seconds"] for m in modes.values())
        baseline_total = sum(BASELINE_E4_SECONDS.values())
        result["total_seconds"] = total
        result["baseline_total_seconds"] = baseline_total
        result["aggregate_speedup"] = baseline_total / total
    if profiler is not None:
        import io
        import pstats
        stream = io.StringIO()
        pstats.Stats(profiler, stream=stream) \
            .sort_stats("cumulative").print_stats(25)
        result["profile_top"] = stream.getvalue()
    return result


# -- driver -----------------------------------------------------------------

def run_engine_bench(chunks: int = GOLDEN_E4_CHUNKS,
                     profile: bool = False,
                     out_path: Optional[str] = "BENCH_engine.json",
                     trace_path: Optional[str] = None) -> dict:
    """Run all scenarios; write ``BENCH_engine.json``; return the dict.

    ``trace_path`` additionally runs one *traced* ``gpu_both`` pipeline
    at the bench chunk count and writes its Chrome trace there, so a
    perf investigation gets the where-does-time-go picture alongside
    the wall-clock numbers.
    """
    results = {
        "bench": "engine-hotpath",
        "chunks": chunks,
        "event_hops": bench_event_hops(),
        "resource_churn": bench_resource_churn(),
        "e4": bench_e4(chunks=chunks, profile=profile),
    }
    if trace_path:
        from repro.bench.tracing import write_trace_bundle
        from repro.core.modes import IntegrationMode

        results["trace"] = write_trace_bundle(
            trace_path, IntegrationMode.GPU_BOTH, chunks)
    if out_path:
        with open(out_path, "w") as handle:
            json.dump(results, handle, indent=2)
        results["written_to"] = out_path
    return results


def render_engine_bench(results: dict) -> str:
    """Human-readable summary of :func:`run_engine_bench` output."""
    lines = []
    hops = results["event_hops"]
    lines.append(f"event hops      {hops['events_per_s']:>12,.0f} ev/s   "
                 f"({hops['speedup']:.2f}x vs seed baseline)")
    churn = results["resource_churn"]
    lines.append(f"resource churn  {churn['acq_per_s']:>12,.0f} acq/s  "
                 f"({churn['speedup']:.2f}x vs seed baseline)")
    e4 = results["e4"]
    for mode, entry in e4["modes"].items():
        speed = (f"  ({entry['speedup']:.2f}x)"
                 if "speedup" in entry else "")
        ok = "" if entry.get("fields_ok", True) else "  FIELDS DRIFTED!"
        lines.append(f"e4 {mode:<12} {entry['seconds']:>8.3f} s"
                     f"{speed}{ok}")
    if "aggregate_speedup" in e4:
        lines.append(f"e4 aggregate    {e4['total_seconds']:>8.3f} s  "
                     f"({e4['aggregate_speedup']:.2f}x vs "
                     f"{e4['baseline_total_seconds']:.3f} s baseline)")
    if "profile_top" in e4:
        lines.append("")
        lines.append(e4["profile_top"])
    if "trace" in results:
        from repro.bench.tracing import trace_summary_line
        lines.append(trace_summary_line(results["trace"]))
    if "written_to" in results:
        lines.append(f"results written to {results['written_to']}")
    return "\n".join(lines)
