"""Multi-tenant traffic-plane benchmark (``repro bench tenancy``).

The sixth bench plane watches the tenancy subsystem (DESIGN.md §15):
locality estimation on the admission hot path, interleaved mix
emission, and the policy experiment the plane exists for — prioritized
residency vs a shared LRU under a mixed-locality tenant population.
Same two promises as every other plane:

1. **Identity** — a one-tenant mix under the default policy reproduces
   the pinned single-stream golden report digests
   (:data:`~repro.bench.dedup.GOLDEN_REPORT_SHA256`) in all four
   integration modes; the O(1) sketch estimator is float-identical to
   the retained naive per-chunk scan; and on the committed
   mixed-locality scenario prioritized admission beats the shared LRU
   on aggregate inline hit rate while inline + compaction recover
   >= 95% of the offline-oracle dedup ratio.  Always checked;
   timing-free.
2. **Speed** — the ring-sketch estimator beats the naive scan by the
   pinned geomean (>= 2x; the scan's cost grows with the window, the
   sketch's does not).  Wall-clock thresholds sit behind
   ``REPRO_PERF_TIMING=1`` in ``benchmarks/test_p9_tenancy.py``;
   timings are always measured and written to ``BENCH_tenancy.json``.

Scenarios (``--quick`` trims corpus sizes and repeats):

* **estimator_w64 / estimator_w1024** — sketch ``observe`` throughput
  at a small and a large window (vs the pinned naive-scan rates; the
  w1024 point is where O(window) per observation really hurts);
* **mix_emit** — interleaved mix emission, windowed batches vs the
  per-chunk path (informational rate, no pinned baseline);
* **admission** — one full prioritized run on the committed scenario:
  chunks/s, hit rates, recovery;
* **contention_curve** — aggregate inline hit rate vs cache capacity
  for both policies (the A17 experiment's data);
* **degenerate_identity / estimator_equivalence / admission_gain** —
  the identity checks above.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import random
import time
from typing import Any, Optional

from repro.bench.common import (
    attach_profile,
    best_of,
    fold_fields_ok,
    rate_entry,
    render_identity_lines,
    render_rate_lines,
    render_tail,
    set_aggregate,
    start_profile,
    write_results,
)
from repro.bench.dedup import GOLDEN_REPORT_CHUNKS, GOLDEN_REPORT_SHA256
from repro.core import IntegrationMode, PipelineConfig
from repro.tenancy import (
    LocalityEstimator,
    NaiveLocalityEstimator,
    TenantMix,
    TenantMixStream,
    TenantSpec,
)
from repro.tenancy.runner import run_tenant_mix
from repro.workload.vdbench import VdbenchStream

#: Naive per-chunk-scan wall-clock baselines (reference container,
#: best-of-5): ``NaiveLocalityEstimator.observe`` throughput at each
#: window — the O(window) linear scan the ring sketch replaces.
BASELINE_RATES = {
    "estimator_w64": 870_650.0,
    "estimator_w1024": 65_235.0,
}

#: The plane's acceptance bar on the reference machine (geomean of the
#: two estimator scenarios).
REQUIRED_TENANCY_SPEEDUP = 2.0

#: The committed mixed-locality scenario: a hot tenant whose working
#: set fits the inline cache against a cold scan that floods it.  The
#: admission-gain identity check and the A16/A17 experiments all read
#: from this exact mix.
SCENARIO_MIX = TenantMix(tenants=(
    TenantSpec(name="hot", seed=11, dedup_ratio=3.0, locality=0.95,
               working_set=64),
    TenantSpec(name="cold", seed=22, dedup_ratio=1.05, locality=0.0,
               working_set=1 << 16),
), seed=7)
SCENARIO_CACHE = 96
SCENARIO_CHUNKS = 8192

#: Inline-hit-rate edge prioritized must hold over the shared LRU on
#: the committed scenario, and the floor on oracle-dedup recovery.
REQUIRED_HIT_GAIN = 1.2
REQUIRED_RECOVERY = 0.95


def _estimator_corpus(n: int, seed: int = 1234) -> list[bytes]:
    """Deterministic fingerprint stream with mid-range locality."""
    stream = VdbenchStream(dedup_ratio=3.0, seed=seed, locality=0.7,
                           working_set=128)
    return [chunk.fingerprint for chunk in stream.chunks(n)]


def bench_estimator(window: int, repeats: int = 5,
                    n: int = 50_000) -> dict:
    """Ring-sketch ``observe`` throughput vs the pinned naive rate."""
    corpus = _estimator_corpus(n)

    def run() -> None:
        estimator = LocalityEstimator(window)
        observe = estimator.observe
        for fingerprint in corpus:
            observe(fingerprint)

    seconds = best_of(run, repeats)
    return rate_entry(f"estimator_w{window}", n, seconds,
                      "observations_per_s", BASELINE_RATES)


def measure_per_chunk_baselines(repeats: int = 5,
                                n: int = 50_000) -> dict[str, float]:
    """Measure the naive linear-scan estimator (what the pinned
    ``BASELINE_RATES`` were captured from on the reference machine)."""
    corpus = _estimator_corpus(n)
    rates = {}
    for window in (64, 1024):
        def run() -> None:
            estimator = NaiveLocalityEstimator(window)
            observe = estimator.observe
            for fingerprint in corpus:
                observe(fingerprint)

        rates[f"estimator_w{window}"] = n / best_of(run, repeats)
    return rates


def bench_mix_emit(repeats: int = 3, n: int = 20_000) -> dict:
    """Interleaved emission: windowed batches vs the per-chunk path."""
    def batched() -> None:
        stream = TenantMixStream(SCENARIO_MIX)
        for _ in stream.chunks_batched(n, window=64):
            pass

    def per_chunk() -> None:
        stream = TenantMixStream(SCENARIO_MIX)
        for _ in stream.chunks(n):
            pass

    batched_s = best_of(batched, repeats)
    per_chunk_s = best_of(per_chunk, repeats)
    return {
        "scenario": "mix_emit",
        "chunks": n,
        "seconds": batched_s,
        "chunks_per_s": n / batched_s,
        "per_chunk_chunks_per_s": n / per_chunk_s,
        "batched_vs_per_chunk": per_chunk_s / batched_s,
    }


def bench_admission(quick: bool = False) -> dict:
    """One full prioritized run on the committed scenario."""
    chunks = 2048 if quick else SCENARIO_CHUNKS
    config = PipelineConfig(tenancy_policy="prioritized",
                            tenancy_cache_entries=SCENARIO_CACHE)
    started = time.perf_counter()
    report = run_tenant_mix(SCENARIO_MIX, IntegrationMode.CPU_ONLY,
                            chunks, base_config=config)
    seconds = time.perf_counter() - started
    return {
        "scenario": "admission",
        "chunks": chunks,
        "seconds": seconds,
        "chunks_per_s": chunks / seconds,
        "inline_hit_rate": report.inline_hit_rate,
        "inline_dedup_ratio": report.inline_dedup_ratio,
        "effective_dedup_ratio": report.effective_dedup_ratio,
        "oracle_dedup_ratio": report.oracle_dedup_ratio,
        "recovery_fraction": report.recovery_fraction,
        "compaction_epochs": report.compaction["epochs"],
        "tenants": {t.name: {"inline_hit_rate": t.inline_hit_rate,
                             "skips": t.skips,
                             "p99_s": t.latency["p99"]}
                    for t in report.tenants},
    }


def bench_contention_curve(quick: bool = False) -> dict:
    """Aggregate inline hit rate vs cache capacity, both policies.

    The cache-contention experiment (A17): as the inline cache shrinks
    the shared LRU degrades toward zero while prioritized holds the
    hot tenant's hit rate near its working-set ceiling.
    """
    chunks = 2048 if quick else SCENARIO_CHUNKS
    capacities = (64, 96, 128) if quick else (64, 96, 128, 256)
    curve: dict[str, dict[str, float]] = {}
    for capacity in capacities:
        point = {}
        for policy in ("shared_lru", "prioritized"):
            config = PipelineConfig(tenancy_policy=policy,
                                    tenancy_cache_entries=capacity)
            report = run_tenant_mix(
                SCENARIO_MIX, IntegrationMode.CPU_ONLY, chunks,
                base_config=config)
            point[policy] = report.inline_hit_rate
        point["gain"] = (point["prioritized"] / point["shared_lru"]
                        if point["shared_lru"] > 0 else float("inf"))
        curve[str(capacity)] = point
    return {"scenario": "contention_curve", "chunks": chunks,
            "capacities": curve}


# -- identity ----------------------------------------------------------------

def check_degenerate_identity() -> dict:
    """One-tenant mix, default policy, vs the pinned golden digests.

    Always full-size (the digests are corpus-exact at
    ``GOLDEN_REPORT_CHUNKS``): the tenancy plane must not perturb a
    single-stream run by one byte in any integration mode.
    """
    mix = TenantMix(tenants=(TenantSpec(name="solo", seed=1234),),
                    seed=99)
    mismatches: dict[str, Any] = {}
    for mode in IntegrationMode.all_modes():
        report = run_tenant_mix(mix, mode, GOLDEN_REPORT_CHUNKS)
        payload = json.dumps(dataclasses.asdict(report.pipeline),
                             sort_keys=True)
        digest = hashlib.sha256(payload.encode()).hexdigest()
        golden = GOLDEN_REPORT_SHA256[mode.value]
        if digest != golden:
            mismatches[mode.value] = {"observed": digest,
                                      "golden": golden}
    return {"modes": [m.value for m in IntegrationMode.all_modes()],
            "fields_ok": not mismatches,
            **({"mismatches": mismatches} if mismatches else {})}


def check_estimator_equivalence(n: int = 20_000) -> dict:
    """Sketch vs naive scan: float-identical estimates, same hits."""
    rng = random.Random(4321)
    mismatches = 0
    for window in (1, 7, 64, 256):
        fast = LocalityEstimator(window)
        naive = NaiveLocalityEstimator(window)
        for _ in range(n // 4):
            fingerprint = rng.randrange(512).to_bytes(4, "big")
            fast.observe(fingerprint)
            naive.observe(fingerprint)
            if fast.estimate != naive.estimate \
                    or fast.hits != naive.hits:
                mismatches += 1
    return {"observations": n, "fields_ok": mismatches == 0,
            **({"mismatches": mismatches} if mismatches else {})}


def check_admission_gain(quick: bool = False) -> dict:
    """Prioritized beats the shared LRU; recovery meets the floor."""
    chunks = 2048 if quick else SCENARIO_CHUNKS
    reports = {}
    for policy in ("shared_lru", "prioritized"):
        config = PipelineConfig(tenancy_policy=policy,
                                tenancy_cache_entries=SCENARIO_CACHE)
        reports[policy] = run_tenant_mix(
            SCENARIO_MIX, IntegrationMode.CPU_ONLY, chunks,
            base_config=config)
    shared = reports["shared_lru"].inline_hit_rate
    prioritized = reports["prioritized"].inline_hit_rate
    gain = prioritized / shared if shared > 0 else float("inf")
    recovery = reports["prioritized"].recovery_fraction
    ok = gain >= REQUIRED_HIT_GAIN and recovery >= REQUIRED_RECOVERY
    return {
        "chunks": chunks,
        "shared_lru_hit_rate": shared,
        "prioritized_hit_rate": prioritized,
        "hit_gain": gain,
        "required_hit_gain": REQUIRED_HIT_GAIN,
        "recovery_fraction": recovery,
        "required_recovery": REQUIRED_RECOVERY,
        "fields_ok": ok,
    }


# -- trace -------------------------------------------------------------------

def write_tenancy_trace(out_path: str, quick: bool = False) -> dict:
    """One traced prioritized run -> validated Chrome trace.

    The chunk envelopes carry tenant tags, so the critical-path report
    grows its per-tenant SLO section — recorded here alongside the
    usual coverage number.
    """
    from repro.obs import (
        CriticalPathReport,
        SimTracer,
        chrome_trace,
        validate_chrome_trace,
    )

    chunks = 1024 if quick else 4096
    tracer = SimTracer()
    config = PipelineConfig(tenancy_policy="prioritized",
                            tenancy_cache_entries=SCENARIO_CACHE)
    run_tenant_mix(SCENARIO_MIX, IntegrationMode.CPU_ONLY, chunks,
                   base_config=config, tracer=tracer)
    payload = chrome_trace(tracer.spans)
    with open(out_path, "w") as handle:
        json.dump(payload, handle)
    critical = CriticalPathReport.from_spans(tracer.spans)
    return {
        "mode": "tenancy",
        "chunks": chunks,
        "out_path": out_path,
        "n_spans": len(tracer.spans),
        "n_events": len(payload["traceEvents"]),
        "coverage": critical.coverage,
        "mean_latency_s": critical.mean_latency_s,
        "tenant_slos": {str(t.tenant): t.p99_s
                        for t in critical.tenants},
        "problems": validate_chrome_trace(payload),
    }


# -- driver ------------------------------------------------------------------

def run_tenancy_bench(quick: bool = False, profile: bool = False,
                      out_path: Optional[str] = "BENCH_tenancy.json",
                      trace_path: Optional[str] = None) -> dict:
    """Run all scenarios; write ``BENCH_tenancy.json``; return the dict.

    ``quick`` trims corpus sizes and repeats — the degenerate-identity
    digests still run full-size (they are corpus-exact), so CI keeps
    complete equivalence coverage.
    """
    profiler = start_profile(profile)
    repeats = 2 if quick else 5
    n = 20_000 if quick else 50_000
    results: dict[str, Any] = {
        "bench": "tenancy-plane",
        "quick": quick,
        "estimator_w64": bench_estimator(64, repeats=repeats, n=n),
        "estimator_w1024": bench_estimator(1024, repeats=repeats, n=n),
        "mix_emit": bench_mix_emit(repeats=2 if quick else 3,
                                   n=10_000 if quick else 20_000),
        "admission": bench_admission(quick=quick),
        "contention_curve": bench_contention_curve(quick=quick),
        "degenerate_identity": check_degenerate_identity(),
        "estimator_equivalence": check_estimator_equivalence(),
        "admission_gain": check_admission_gain(quick=quick),
    }
    fold_fields_ok(results, ("degenerate_identity",
                             "estimator_equivalence",
                             "admission_gain"))
    set_aggregate(results, BASELINE_RATES, REQUIRED_TENANCY_SPEEDUP)
    attach_profile(profiler, results)
    if trace_path:
        results["trace"] = write_tenancy_trace(trace_path, quick=quick)
    write_results(results, out_path)
    return results


def render_tenancy_bench(results: dict) -> str:
    """Human-readable summary of :func:`run_tenancy_bench` output."""
    lines = []
    units = {"estimator_w64": "observations_per_s",
             "estimator_w1024": "observations_per_s"}
    render_rate_lines(results, units, lines)
    emit = results["mix_emit"]
    lines.append(f"{'mix_emit':<18} {emit['chunks_per_s']:>14,.0f} "
                 f"chunks/s batched "
                 f"({emit['batched_vs_per_chunk']:.2f}x per-chunk)")
    admission = results["admission"]
    lines.append(f"{'admission':<18} hit rate "
                 f"{admission['inline_hit_rate']:.3f}, dedup inline "
                 f"{admission['inline_dedup_ratio']:.3f} -> effective "
                 f"{admission['effective_dedup_ratio']:.3f} "
                 f"(oracle {admission['oracle_dedup_ratio']:.3f}, "
                 f"recovery {admission['recovery_fraction']:.1%})")
    curve = results["contention_curve"]["capacities"]
    points = ", ".join(
        f"{capacity}e {entry['shared_lru']:.3f}->"
        f"{entry['prioritized']:.3f}"
        for capacity, entry in curve.items())
    lines.append(f"{'contention_curve':<18} shared->prioritized "
                 f"hit rate: {points}")
    gain = results["admission_gain"]
    lines.append(f"{'admission_gain':<18} "
                 f"{gain['hit_gain']:>13.2f}x hit rate vs shared LRU "
                 f"(recovery {gain['recovery_fraction']:.1%})")
    render_identity_lines(
        results, ("degenerate_identity", "estimator_equivalence",
                  "admission_gain"), lines)
    return render_tail(results, lines)
