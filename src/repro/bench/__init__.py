"""Benchmark harness: experiment definitions and paper-style reporting.

Each function in :mod:`~repro.bench.experiments` regenerates one of the
paper's reported results (see DESIGN.md §4 for the experiment index);
:mod:`~repro.bench.reporting` renders the same rows/series the paper
reports as ASCII tables and bars.  The pytest-benchmark entry points in
``benchmarks/`` are thin wrappers over these.
"""

from repro.bench.reporting import BarChart, Table
from repro.bench import experiments

__all__ = ["BarChart", "Table", "experiments"]
