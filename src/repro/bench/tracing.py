"""Traced-run harness (``repro trace``, ``repro bench ... --trace``).

One place builds the "trace bundle" every entry point wants: run a
timed pipeline with a live :class:`~repro.obs.SimTracer`, schema-check
the Chrome ``trace_event`` export, write it to disk, and summarize the
critical path.  The CLI's ``trace`` subcommand, the ``--trace`` flags
on ``run``/``bench``, and the CI trace-smoke job all call through here
so they cannot drift apart on validation or file format.
"""

from __future__ import annotations

import json
from typing import Any, Optional

from repro.core.calibration import run_mode
from repro.core.modes import IntegrationMode
from repro.obs import (
    CriticalPathReport,
    SimTracer,
    chrome_trace,
    validate_chrome_trace,
)


def run_traced(mode: IntegrationMode, chunks: int, **run_kwargs):
    """One pipeline run with tracing on; returns ``(report, tracer)``."""
    tracer = SimTracer()
    report = run_mode(mode, chunks, tracer=tracer, **run_kwargs)
    return report, tracer


def build_trace_bundle(mode: IntegrationMode, chunks: int,
                       **run_kwargs) -> dict[str, Any]:
    """Traced run + exports, unserialized.

    Returns ``report`` (the run's PipelineReport), ``spans``, the Chrome
    ``payload``, its validation ``problems`` (empty = schema-clean), and
    the ``critical_path`` report.
    """
    report, tracer = run_traced(mode, chunks, **run_kwargs)
    payload = chrome_trace(tracer.spans)
    return {
        "mode": mode.value,
        "chunks": chunks,
        "report": report,
        "spans": tracer.spans,
        "payload": payload,
        "problems": validate_chrome_trace(payload),
        "critical_path": CriticalPathReport.from_spans(tracer.spans),
    }


def write_trace_bundle(out_path: str, mode: IntegrationMode, chunks: int,
                       **run_kwargs) -> dict[str, Any]:
    """Traced run -> validated Chrome trace at ``out_path``.

    Returns a JSON-friendly summary: span/event counts, critical-path
    coverage, and any validation problems.  The trace file is written
    even when validation fails, so the artifact can be inspected.
    """
    bundle = build_trace_bundle(mode, chunks, **run_kwargs)
    with open(out_path, "w") as handle:
        json.dump(bundle["payload"], handle)
    critical: CriticalPathReport = bundle["critical_path"]
    return {
        "mode": bundle["mode"],
        "chunks": bundle["chunks"],
        "out_path": out_path,
        "n_spans": len(bundle["spans"]),
        "n_events": len(bundle["payload"]["traceEvents"]),
        "coverage": critical.coverage,
        "mean_latency_s": critical.mean_latency_s,
        "problems": bundle["problems"],
    }


def trace_summary_line(summary: dict[str, Any]) -> str:
    """One-line rendering of a :func:`write_trace_bundle` summary."""
    status = ("OK" if not summary["problems"]
              else f"{len(summary['problems'])} schema problem(s)")
    return (f"trace [{summary['mode']}, {summary['chunks']} chunks] "
            f"-> {summary['out_path']}: {summary['n_events']} events, "
            f"{summary['n_spans']} spans, "
            f"coverage {summary['coverage']:.1%}, {status}")


def maybe_trace(trace_path: Optional[str], mode: IntegrationMode,
                chunks: int, **run_kwargs) -> Optional[dict[str, Any]]:
    """``--trace`` helper: no-op on ``None``, else write and summarize."""
    if trace_path is None:
        return None
    return write_trace_bundle(trace_path, mode, chunks, **run_kwargs)
