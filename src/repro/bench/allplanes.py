"""One command over every bench plane: ``repro bench all``.

Runs the six perf planes back to back — engine hot path, data-plane
functional loops, dedup index plane, batched functional pipeline,
cluster sharding, multi-tenant traffic — and folds their scenario
timings into a single baseline-vs-current summary table, so "did
anything regress?" is one invocation instead of six.

Each plane keeps its own pinned seed baselines and identity checks;
this driver only aggregates.  It deliberately passes ``out_path=None``
to every plane so a summary sweep never clobbers the committed
``BENCH_*.json`` snapshots (use the per-plane subcommands to refresh
those).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.bench.common import scenario_rows

#: Plane order in the summary (also the run order: fast first).
PLANES = ("engine", "dataplane", "dedup", "pipeline", "cluster",
          "tenancy")


def _plane_aggregate(plane: str, results: dict,
                     rows: list[dict]) -> Optional[float]:
    """Plane-level speedup: the plane's own aggregate if it publishes
    one, else the geomean of its scenario speedups."""
    aggregate = results.get("aggregate_speedup")
    if aggregate is None and plane == "engine":
        aggregate = results.get("e4", {}).get("aggregate_speedup")
    if aggregate is None and rows:
        product = 1.0
        for row in rows:
            product *= row["speedup"]
        aggregate = product ** (1.0 / len(rows))
    return aggregate


def _plane_identity(plane: str, results: dict) -> bool:
    if plane == "engine":
        return bool(results.get("e4", {}).get("fields_ok", True))
    return bool(results.get("fields_ok", True))


def run_all_benches(quick: bool = False) -> dict:
    """Run every plane (identity checks included); return the summary.

    ``quick`` is forwarded to the planes that support it; the engine
    plane always runs at the golden chunk count because its pinned
    baselines are only meaningful there.
    """
    from repro.bench.cluster import run_cluster_bench
    from repro.bench.dataplane import run_dataplane_bench
    from repro.bench.dedup import run_dedup_bench
    from repro.bench.perf import run_engine_bench
    from repro.bench.pipeline import run_pipeline_bench
    from repro.bench.tenancy import run_tenancy_bench

    plane_results = {
        "engine": run_engine_bench(out_path=None),
        "dataplane": run_dataplane_bench(quick=quick, out_path=None),
        "dedup": run_dedup_bench(quick=quick, out_path=None),
        "pipeline": run_pipeline_bench(quick=quick, out_path=None),
        "cluster": run_cluster_bench(quick=quick, out_path=None),
        "tenancy": run_tenancy_bench(quick=quick, out_path=None),
    }
    rows: list[dict[str, Any]] = []
    aggregates: dict[str, Optional[float]] = {}
    identity: dict[str, bool] = {}
    for plane in PLANES:
        results = plane_results[plane]
        plane_rows = scenario_rows(plane, results)
        rows.extend(plane_rows)
        aggregates[plane] = _plane_aggregate(plane, results, plane_rows)
        identity[plane] = _plane_identity(plane, results)
    return {
        "bench": "all-planes",
        "quick": quick,
        "rows": rows,
        "aggregates": aggregates,
        "identity": identity,
        "fields_ok": all(identity.values()),
        "planes": plane_results,
    }


def json_all_summary(results: dict) -> dict:
    """The ``repro bench all --json`` payload: one document holding
    every plane's machine-readable summary (the same shape the
    per-plane ``--json`` outputs emit) under ``planes``, next to the
    cross-plane rows, aggregates and identity verdicts.  Previously
    ``all --json`` dropped the per-plane summaries entirely, so CI
    could not assert on a single plane's rows from the combined run."""
    from repro.bench.common import json_summary

    return {
        "bench": results["bench"],
        "quick": results["quick"],
        "rows": results["rows"],
        "aggregates": results["aggregates"],
        "identity": results["identity"],
        "fields_ok": results["fields_ok"],
        "planes": {plane: json_summary(plane, results["planes"][plane])
                   for plane in PLANES},
    }


def render_all_benches(results: dict) -> str:
    """The combined baseline-vs-current table plus plane verdicts."""
    header = (f"{'plane':<10} {'scenario':<20} {'current':>15} "
              f"{'baseline':>15} {'unit':>10} {'speedup':>8}")
    lines = [header, "-" * len(header)]
    for row in results["rows"]:
        lines.append(f"{row['plane']:<10} {row['scenario']:<20} "
                     f"{row['current']:>15,.0f} {row['baseline']:>15,.0f} "
                     f"{row['unit']:>10} {row['speedup']:>7.2f}x")
    lines.append("-" * len(header))
    for plane in PLANES:
        aggregate = results["aggregates"].get(plane)
        speed = f"{aggregate:.2f}x" if aggregate is not None else "n/a"
        verdict = "ok" if results["identity"].get(plane) else "DRIFT"
        lines.append(f"{plane:<10} {'aggregate':<20} {speed:>9}   "
                     f"identity {verdict}")
    lines.append(f"identity overall: "
                 f"{'ok' if results['fields_ok'] else 'DRIFT'}")
    return "\n".join(lines)
