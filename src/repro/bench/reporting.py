"""Paper-style ASCII reporting: aligned tables and bar charts.

The benchmarks print their results through these so every experiment's
output reads like the table/figure it reproduces (Fig. 2 renders as a
horizontal bar chart, the sweeps as series tables).
"""

from __future__ import annotations

from typing import Any, Sequence


class Table:
    """Fixed-width ASCII table with a title and typed columns."""

    def __init__(self, title: str, columns: Sequence[str]):
        self.title = title
        self.columns = list(columns)
        self.rows: list[list[str]] = []

    def add_row(self, *cells: Any) -> None:
        """Append one row; cells are str()-ed, floats get 1-3 decimals."""
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}")
        self.rows.append([self._format(c) for c in cells])

    @staticmethod
    def _format(cell: Any) -> str:
        if isinstance(cell, float):
            if cell >= 100:
                return f"{cell:.1f}"
            if cell >= 1:
                return f"{cell:.2f}"
            return f"{cell:.3f}"
        return str(cell)

    def render(self) -> str:
        """The full table as a string."""
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        header = " | ".join(c.ljust(w)
                            for c, w in zip(self.columns, widths))
        lines = [self.title, "=" * max(len(self.title), len(header)),
                 header, sep]
        for row in self.rows:
            lines.append(" | ".join(cell.rjust(w)
                                    for cell, w in zip(row, widths)))
        return "\n".join(lines)

    def print(self) -> None:
        """Print with surrounding blank lines (readable under pytest -s)."""
        print("\n" + self.render() + "\n")


class BarChart:
    """Horizontal ASCII bar chart (for regenerating Fig. 2)."""

    def __init__(self, title: str, unit: str = "", width: int = 50):
        self.title = title
        self.unit = unit
        self.width = width
        self.bars: list[tuple[str, float]] = []

    def add_bar(self, label: str, value: float) -> None:
        """Append one labelled bar."""
        self.bars.append((label, value))

    def render(self) -> str:
        """The chart as a string, scaled to the longest bar."""
        if not self.bars:
            return self.title + "\n(no data)"
        peak = max(value for _label, value in self.bars) or 1.0
        label_width = max(len(label) for label, _value in self.bars)
        lines = [self.title, "=" * len(self.title)]
        for label, value in self.bars:
            bar = "#" * max(1, round(self.width * value / peak))
            lines.append(f"{label.ljust(label_width)} | "
                         f"{bar} {value:.1f}{self.unit}")
        return "\n".join(lines)

    def print(self) -> None:
        """Print with surrounding blank lines."""
        print("\n" + self.render() + "\n")
