"""Workload substrate: the vdbench substitute (DESIGN.md §2).

The paper generates its datasets with vdbench, dialing in a deduplication
ratio and a compression ratio (both 2.0 in the evaluation).  This package
regenerates equivalent streams:

* :mod:`~repro.workload.datagen` — block contents with a *target
  compression ratio* against the library's own codecs, with an empirical
  calibration loop;
* :mod:`~repro.workload.vdbench` — chunk streams with controlled dedup
  and compression ratios, in payload mode (real bytes) or descriptor
  mode (synthetic fingerprints + ratios, for the large timed runs);
* :mod:`~repro.workload.patterns` — offset patterns (sequential, uniform
  random, Zipf) for access-locality experiments;
* :mod:`~repro.workload.trace` — I/O trace recording and replay.
"""

from repro.workload.datagen import BlockContentGenerator, measured_ratio
from repro.workload.patterns import (
    SequentialPattern,
    UniformPattern,
    ZipfPattern,
)
from repro.workload.replay import (
    ReplayStats,
    VolumeReplayer,
    trace_write_chunks,
)
from repro.workload.trace import TraceRecord, TraceRecorder
from repro.workload.vdbench import StreamStats, VdbenchStream

__all__ = [
    "ReplayStats",
    "VolumeReplayer",
    "trace_write_chunks",
    "BlockContentGenerator",
    "measured_ratio",
    "SequentialPattern",
    "UniformPattern",
    "ZipfPattern",
    "TraceRecord",
    "TraceRecorder",
    "StreamStats",
    "VdbenchStream",
]
