"""I/O trace recording and replay.

A trace is a list of (op, offset, size) records with optional submit
timestamps.  The recorder collects them from a running workload; the
records replay against anything exposing a ``write_block``/``read_block``
interface (e.g. :class:`~repro.storage.volume.ReducedVolume`).
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from repro.errors import WorkloadError


@dataclass(frozen=True)
class TraceRecord:
    """One traced I/O."""

    op: str              # "write" | "read"
    offset: int
    size: int
    timestamp: Optional[float] = None

    def __post_init__(self) -> None:
        if self.op not in ("write", "read"):
            raise WorkloadError(f"unknown op {self.op!r}")
        if self.offset < 0 or self.size <= 0:
            raise WorkloadError(
                f"invalid extent [{self.offset}, +{self.size})")

    def to_line(self) -> str:
        """Serialize to the one-line text format."""
        stamp = "" if self.timestamp is None else f" {self.timestamp:.9f}"
        return f"{self.op} {self.offset} {self.size}{stamp}"

    @classmethod
    def from_line(cls, line: str) -> "TraceRecord":
        """Parse the one-line text format."""
        parts = line.split()
        if len(parts) not in (3, 4):
            raise WorkloadError(f"malformed trace line: {line!r}")
        timestamp = float(parts[3]) if len(parts) == 4 else None
        return cls(op=parts[0], offset=int(parts[1]), size=int(parts[2]),
                   timestamp=timestamp)


class TraceRecorder:
    """Accumulates trace records and round-trips them through text."""

    def __init__(self) -> None:
        self.records: list[TraceRecord] = []

    def record(self, op: str, offset: int, size: int,
               timestamp: Optional[float] = None) -> None:
        """Append one record."""
        self.records.append(TraceRecord(op, offset, size, timestamp))

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def dump(self, stream: io.TextIOBase) -> None:
        """Write the trace as text, one record per line."""
        for record in self.records:
            stream.write(record.to_line() + "\n")

    @classmethod
    def load(cls, stream: Iterable[str]) -> "TraceRecorder":
        """Read a text trace back."""
        recorder = cls()
        for line in stream:
            line = line.strip()
            if line and not line.startswith("#"):
                recorder.records.append(TraceRecord.from_line(line))
        return recorder

    def total_bytes(self, op: Optional[str] = None) -> int:
        """Bytes moved by the trace (optionally one op kind only)."""
        return sum(r.size for r in self.records
                   if op is None or r.op == op)
