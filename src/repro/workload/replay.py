"""Trace replay: drive a volume or the timed pipeline from a trace.

Block traces carry extents, not data, so the replayer synthesizes
deterministic content per write (seeded by offset and overwrite count)
and keeps a shadow copy, which makes every replayed read verifiable —
replay doubles as an end-to-end consistency check.

For the timed side, :func:`trace_write_chunks` turns a trace's writes
into descriptor-mode chunks (duplicate writes of an extent version share
fingerprints), ready for :meth:`repro.core.pipeline.ReductionPipeline.run`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.errors import WorkloadError
from repro.types import Chunk, DEFAULT_CHUNK_SIZE
from repro.workload.datagen import BlockContentGenerator
from repro.workload.trace import TraceRecord, TraceRecorder


@dataclass
class ReplayStats:
    """Outcome of one functional replay."""

    writes: int = 0
    reads: int = 0
    bytes_written: int = 0
    bytes_read: int = 0
    read_mismatches: int = 0

    @property
    def verified(self) -> bool:
        """True when every replayed read matched the shadow copy."""
        return self.read_mismatches == 0


class VolumeReplayer:
    """Replays a trace against a :class:`~repro.storage.volume.ReducedVolume`.

    Writes get deterministic synthetic content (per extent and per
    overwrite generation); reads are verified against the shadow state.
    Extents must be chunk-aligned, as block traces for 4 KiB-sector
    devices are.
    """

    def __init__(self, volume, comp_ratio: float = 2.0, seed: int = 0,
                 chunk_size: int = DEFAULT_CHUNK_SIZE,
                 content_pool: Optional[int] = None):
        self.volume = volume
        self.chunk_size = chunk_size
        #: Finite content universe: writes draw their data from this many
        #: distinct blocks (vdbench-style), so different extents can carry
        #: identical content and deduplicate.  None = all-unique content.
        self.content_pool = content_pool
        self._content = BlockContentGenerator(comp_ratio, seed=seed)
        #: Shadow of every written chunk: offset -> bytes.
        self._shadow: dict[int, bytes] = {}
        #: Overwrite generation per offset (varies the content).
        self._generation: dict[int, int] = {}
        self.stats = ReplayStats()

    def _content_id(self, offset: int, generation: int) -> int:
        raw = int.from_bytes(hashlib.sha1(
            f"{offset}:{generation}".encode()).digest()[:4], "big")
        if self.content_pool:
            return raw % self.content_pool
        return raw

    def _content_for(self, offset: int) -> bytes:
        generation = self._generation.get(offset, 0)
        salt = self._content_id(offset, generation)
        return self._content.make_block(self.chunk_size, salt=salt)

    def _apply_write(self, record: TraceRecord) -> None:
        for position in range(record.offset, record.offset + record.size,
                              self.chunk_size):
            data = self._content_for(position)
            self.volume.write(position, data)
            self._shadow[position] = data
            self._generation[position] = \
                self._generation.get(position, 0) + 1
        self.stats.writes += 1
        self.stats.bytes_written += record.size

    def _apply_read(self, record: TraceRecord) -> None:
        for position in range(record.offset, record.offset + record.size,
                              self.chunk_size):
            expected = self._shadow.get(position)
            if expected is None:
                continue  # traces read unwritten extents; skip verify
            actual = self.volume.read(position, self.chunk_size)
            if actual != expected:
                self.stats.read_mismatches += 1
        self.stats.reads += 1
        self.stats.bytes_read += record.size

    def replay(self, trace: TraceRecorder) -> ReplayStats:
        """Apply every record in order; returns the verified stats."""
        for record in trace:
            if record.offset % self.chunk_size \
                    or record.size % self.chunk_size:
                raise WorkloadError(
                    f"trace extent [{record.offset}, +{record.size}) is "
                    f"not {self.chunk_size}-aligned")
            if record.op == "write":
                self._apply_write(record)
            else:
                self._apply_read(record)
        return self.stats


def trace_write_chunks(trace: TraceRecorder, comp_ratio: float = 2.0,
                       seed: int = 0,
                       chunk_size: int = DEFAULT_CHUNK_SIZE,
                       content_pool: Optional[int] = None
                       ) -> Iterator[Chunk]:
    """Descriptor-mode chunks for the trace's writes, in order.

    Content is drawn from the same finite pool model as
    :class:`VolumeReplayer`, so writes of identical content — wherever
    they land — share fingerprints and deduplicate in the pipeline.
    """
    generation: dict[int, int] = {}
    emitted = 0
    for record in trace:
        if record.op != "write":
            continue
        if record.offset % chunk_size or record.size % chunk_size:
            raise WorkloadError(
                f"trace extent [{record.offset}, +{record.size}) is "
                f"not {chunk_size}-aligned")
        for position in range(record.offset,
                              record.offset + record.size, chunk_size):
            gen = generation.get(position, 0)
            generation[position] = gen + 1
            raw = int.from_bytes(hashlib.sha1(
                f"{position}:{gen}".encode()).digest()[:4], "big")
            content_id = raw % content_pool if content_pool else raw
            fingerprint = hashlib.sha1(
                f"trace:{seed}:{content_id}".encode()).digest()
            yield Chunk(offset=emitted * chunk_size, size=chunk_size,
                        fingerprint=fingerprint, comp_ratio=comp_ratio)
            emitted += 1
