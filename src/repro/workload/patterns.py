"""Offset/access patterns for workload construction.

All patterns draw *slot numbers* in ``[0, n_slots)``; callers multiply by
the block size.  Deterministic under a seed, like everything else in the
workload package.
"""

from __future__ import annotations

import bisect
import random
from abc import ABC, abstractmethod

from repro.errors import WorkloadError


class AccessPattern(ABC):
    """Source of slot numbers."""

    def __init__(self, n_slots: int):
        if n_slots < 1:
            raise WorkloadError(f"need at least one slot, got {n_slots}")
        self.n_slots = n_slots

    @abstractmethod
    def next_slot(self) -> int:
        """Draw the next slot number."""


class SequentialPattern(AccessPattern):
    """0, 1, 2, ... wrapping around."""

    def __init__(self, n_slots: int, start: int = 0):
        super().__init__(n_slots)
        self._next = start % n_slots

    def next_slot(self) -> int:
        slot = self._next
        self._next = (self._next + 1) % self.n_slots
        return slot


class UniformPattern(AccessPattern):
    """Independent uniform draws."""

    def __init__(self, n_slots: int, *, seed: int):
        super().__init__(n_slots)
        self._rng = random.Random(seed)

    def next_slot(self) -> int:
        return self._rng.randrange(self.n_slots)


class ZipfPattern(AccessPattern):
    """Zipf-distributed draws: slot k with probability ~ 1/(k+1)^s.

    The skew that makes small GPU bins and the bin buffer worth having:
    a hot working set gets most of the accesses.
    """

    def __init__(self, n_slots: int, skew: float = 1.0, *, seed: int):
        super().__init__(n_slots)
        if skew <= 0:
            raise WorkloadError(f"skew must be positive, got {skew}")
        self.skew = skew
        self._rng = random.Random(seed)
        cdf = []
        total = 0.0
        for k in range(n_slots):
            total += 1.0 / (k + 1) ** skew
            cdf.append(total)
        self._cdf = [c / total for c in cdf]

    def next_slot(self) -> int:
        return bisect.bisect_left(self._cdf, self._rng.random())
