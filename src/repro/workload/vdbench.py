"""vdbench-style chunk streams with dedup and compression dials.

The paper: "The vdbench is used to generate the dataset.  The size of the
data stream is about 2 GB.  The deduplication and compression ratio are
set to 2.0, which is a common ratio for primary storage systems."

A :class:`VdbenchStream` emits chunks where

* each chunk is a duplicate of an earlier one with probability
  ``1 - 1/dedup_ratio`` (so the stream's total/unique ratio converges to
  the dial),
* duplicate picks favour the *recent* working set with probability
  ``locality`` (temporal locality — what makes the paper's bin buffer
  earn its keep) and otherwise draw uniformly from all prior uniques,
* every unique gets a per-chunk compression ratio drawn around the dial.

Payload mode regenerates real bytes deterministically per unique id, so
duplicates are byte-identical and SHA-1 finds them; descriptor mode ships
synthetic fingerprints (shared between duplicates) and the drawn ratio,
which keeps indexing fully real at 2 GB scale without materializing 2 GB.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Iterator

from repro.errors import WorkloadError
from repro.types import Chunk, DEFAULT_CHUNK_SIZE
from repro.workload.datagen import BlockContentGenerator, \
    analytic_random_fraction


@dataclass
class StreamStats:
    """Ground-truth statistics of an emitted stream."""

    chunks: int = 0
    uniques: int = 0
    duplicates: int = 0
    bytes_emitted: int = 0
    ratio_sum: float = 0.0

    @property
    def dedup_ratio(self) -> float:
        """total chunks / unique chunks."""
        return self.chunks / self.uniques if self.uniques else 1.0

    @property
    def mean_comp_ratio(self) -> float:
        """Mean per-chunk compression-ratio dial value."""
        return self.ratio_sum / self.chunks if self.chunks else 1.0


class VdbenchStream:
    """Deterministic chunk stream with dedup/compression dials."""

    def __init__(self, dedup_ratio: float = 2.0, comp_ratio: float = 2.0,
                 chunk_size: int = DEFAULT_CHUNK_SIZE, seed: int = 0,
                 payload: bool = False, comp_spread: float = 0.15,
                 locality: float = 0.5, working_set: int = 128):
        if dedup_ratio < 1.0:
            raise WorkloadError(
                f"dedup_ratio must be >= 1.0, got {dedup_ratio}")
        if comp_ratio < 1.0:
            raise WorkloadError(
                f"comp_ratio must be >= 1.0, got {comp_ratio}")
        if not 0.0 <= locality <= 1.0:
            raise WorkloadError(f"locality must be in [0, 1], "
                                f"got {locality}")
        if working_set < 1:
            raise WorkloadError(
                f"working_set must be >= 1, got {working_set}")
        self.dedup_ratio = dedup_ratio
        self.comp_ratio = comp_ratio
        self.chunk_size = chunk_size
        self.seed = seed
        self.payload = payload
        self.comp_spread = comp_spread
        self.locality = locality
        self.working_set = working_set
        self._rng = random.Random(seed)
        self._dup_probability = 1.0 - 1.0 / dedup_ratio
        #: Per-unique-id compression ratio (duplicates share content).
        self._unique_ratios: list[float] = []
        self._offset = 0
        self._content = BlockContentGenerator(comp_ratio, seed=seed) \
            if payload else None
        self.stats = StreamStats()

    # -- internals ---------------------------------------------------------

    def _draw_ratio(self) -> float:
        ratio = self._rng.gauss(self.comp_ratio,
                                self.comp_ratio * self.comp_spread)
        return max(1.0, ratio)

    def _pick_duplicate_id(self) -> int:
        n = len(self._unique_ratios)
        if self.locality and self._rng.random() < self.locality:
            window = min(self.working_set, n)
            return self._rng.randrange(n - window, n)
        return self._rng.randrange(n)

    def _fingerprint_for(self, unique_id: int) -> bytes:
        return hashlib.sha1(
            f"vdbench:{self.seed}:{unique_id}".encode()).digest()

    def _payload_for(self, unique_id: int, ratio: float) -> bytes:
        assert self._content is not None
        self._content.random_fraction = analytic_random_fraction(ratio)
        return self._content.make_block(self.chunk_size, salt=unique_id)

    # -- stream ------------------------------------------------------------

    def next_chunk(self) -> Chunk:
        """Emit the next chunk of the stream."""
        is_dup = (self._unique_ratios
                  and self._rng.random() < self._dup_probability)
        if is_dup:
            unique_id = self._pick_duplicate_id()
            ratio = self._unique_ratios[unique_id]
            self.stats.duplicates += 1
        else:
            unique_id = len(self._unique_ratios)
            ratio = self._draw_ratio()
            self._unique_ratios.append(ratio)
            self.stats.uniques += 1

        chunk = Chunk(
            offset=self._offset,
            size=self.chunk_size,
            payload=(self._payload_for(unique_id, ratio)
                     if self.payload else None),
            fingerprint=(None if self.payload
                         else self._fingerprint_for(unique_id)),
            comp_ratio=None if self.payload else ratio,
        )
        self._offset += self.chunk_size
        self.stats.chunks += 1
        self.stats.bytes_emitted += self.chunk_size
        self.stats.ratio_sum += ratio
        return chunk

    def chunks(self, n: int) -> Iterator[Chunk]:
        """Emit ``n`` chunks."""
        for _ in range(n):
            yield self.next_chunk()

    def chunks_for_bytes(self, total_bytes: int) -> Iterator[Chunk]:
        """Emit chunks until ``total_bytes`` of stream have been produced."""
        emitted = 0
        while emitted < total_bytes:
            chunk = self.next_chunk()
            emitted += chunk.size
            yield chunk
