"""vdbench-style chunk streams with dedup and compression dials.

The paper: "The vdbench is used to generate the dataset.  The size of the
data stream is about 2 GB.  The deduplication and compression ratio are
set to 2.0, which is a common ratio for primary storage systems."

A :class:`VdbenchStream` emits chunks where

* each chunk is a duplicate of an earlier one with probability
  ``1 - 1/dedup_ratio`` (so the stream's total/unique ratio converges to
  the dial),
* duplicate picks favour the *recent* working set with probability
  ``locality`` (temporal locality — what makes the paper's bin buffer
  earn its keep) and otherwise draw uniformly from all prior uniques,
* every unique gets a per-chunk compression ratio drawn around the dial.

Payload mode regenerates real bytes deterministically per unique id, so
duplicates are byte-identical and SHA-1 finds them; descriptor mode ships
synthetic fingerprints (shared between duplicates) and the drawn ratio,
which keeps indexing fully real at 2 GB scale without materializing 2 GB.
"""

from __future__ import annotations

import hashlib
import random
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.chunkbatch import ChunkBatch
from repro.errors import ConfigError, WorkloadError
from repro.types import Chunk, DEFAULT_CHUNK_SIZE
from repro.workload.datagen import BlockContentGenerator, \
    analytic_random_fraction

#: Entry budget of the batched path's per-unique payload cache (at the
#: 4 KiB default chunk size this is ~4 MB of regenerated blocks).
PAYLOAD_CACHE_ENTRIES = 1024


@dataclass
class StreamStats:
    """Ground-truth statistics of an emitted stream."""

    chunks: int = 0
    uniques: int = 0
    duplicates: int = 0
    bytes_emitted: int = 0
    ratio_sum: float = 0.0

    @property
    def dedup_ratio(self) -> float:
        """total chunks / unique chunks."""
        return self.chunks / self.uniques if self.uniques else 1.0

    @property
    def mean_comp_ratio(self) -> float:
        """Mean per-chunk compression-ratio dial value."""
        return self.ratio_sum / self.chunks if self.chunks else 1.0


class VdbenchStream:
    """Deterministic chunk stream with dedup/compression dials."""

    def __init__(self, dedup_ratio: float = 2.0, comp_ratio: float = 2.0,
                 chunk_size: int = DEFAULT_CHUNK_SIZE, seed: int = 0,
                 payload: bool = False, comp_spread: float = 0.15,
                 locality: float = 0.5, working_set: int = 128,
                 offset_base: int = 0):
        if dedup_ratio < 1.0:
            raise WorkloadError(
                f"dedup_ratio must be >= 1.0, got {dedup_ratio}")
        if comp_ratio < 1.0:
            raise WorkloadError(
                f"comp_ratio must be >= 1.0, got {comp_ratio}")
        if not 0.0 <= locality <= 1.0:
            raise WorkloadError(f"locality must be in [0, 1], "
                                f"got {locality}")
        if working_set < 1:
            raise WorkloadError(
                f"working_set must be >= 1, got {working_set}")
        if offset_base < 0:
            raise WorkloadError(
                f"offset_base must be >= 0, got {offset_base}")
        self.dedup_ratio = dedup_ratio
        self.comp_ratio = comp_ratio
        self.chunk_size = chunk_size
        self.seed = seed
        self.payload = payload
        self.comp_spread = comp_spread
        self.locality = locality
        self.working_set = working_set
        self._rng = random.Random(seed)
        self._dup_probability = 1.0 - 1.0 / dedup_ratio
        #: Per-unique-id compression ratio (duplicates share content).
        self._unique_ratios: list[float] = []
        #: Logical address cursor; tenancy mixes give each tenant a
        #: disjoint address stride so interleaved streams never collide.
        self._offset = offset_base
        self._content = BlockContentGenerator(comp_ratio, seed=seed) \
            if payload else None
        #: Batched-path caches: duplicates reuse the unique's fingerprint
        #: (descriptor mode) or regenerated block (payload mode, bounded
        #: LRU) instead of re-deriving it.  Pure memoization — both are
        #: deterministic functions of the unique id — so the emitted
        #: chunks are byte-equal to the per-chunk path's.
        self._unique_fps: dict[int, bytes] = {}
        self._payload_cache: OrderedDict[int, bytes] = OrderedDict()
        #: Optional :class:`repro.verify.MemoVerifier`: replays sampled
        #: payload-cache hits and freezes emitted batch columns.
        self.verifier = None
        self.stats = StreamStats()

    # -- internals ---------------------------------------------------------

    def _draw_ratio(self) -> float:
        ratio = self._rng.gauss(self.comp_ratio,
                                self.comp_ratio * self.comp_spread)
        return max(1.0, ratio)

    def _pick_duplicate_id(self) -> int:
        n = len(self._unique_ratios)
        if self.locality and self._rng.random() < self.locality:
            window = min(self.working_set, n)
            return self._rng.randrange(n - window, n)
        return self._rng.randrange(n)

    def _fingerprint_for(self, unique_id: int) -> bytes:
        return hashlib.sha1(
            f"vdbench:{self.seed}:{unique_id}".encode()).digest()

    def _payload_for(self, unique_id: int, ratio: float) -> bytes:
        assert self._content is not None
        self._content.random_fraction = analytic_random_fraction(ratio)
        return self._content.make_block(self.chunk_size, salt=unique_id)

    # -- stream ------------------------------------------------------------

    def next_chunk(self) -> Chunk:
        """Emit the next chunk of the stream."""
        is_dup = (self._unique_ratios
                  and self._rng.random() < self._dup_probability)
        if is_dup:
            unique_id = self._pick_duplicate_id()
            ratio = self._unique_ratios[unique_id]
            self.stats.duplicates += 1
        else:
            unique_id = len(self._unique_ratios)
            ratio = self._draw_ratio()
            self._unique_ratios.append(ratio)
            self.stats.uniques += 1

        chunk = Chunk(
            offset=self._offset,
            size=self.chunk_size,
            payload=(self._payload_for(unique_id, ratio)
                     if self.payload else None),
            fingerprint=(None if self.payload
                         else self._fingerprint_for(unique_id)),
            comp_ratio=None if self.payload else ratio,
        )
        self._offset += self.chunk_size
        self.stats.chunks += 1
        self.stats.bytes_emitted += self.chunk_size
        self.stats.ratio_sum += ratio
        return chunk

    def chunks(self, n: int) -> Iterator[Chunk]:
        """Emit ``n`` chunks."""
        for _ in range(n):
            yield self.next_chunk()

    # -- batched emission (the array-native functional plane) ----------------

    def _fingerprint_cached(self, unique_id: int) -> bytes:
        fingerprint = self._unique_fps.get(unique_id)
        if fingerprint is None:
            fingerprint = self._fingerprint_for(unique_id)
            self._unique_fps[unique_id] = fingerprint
        return fingerprint

    def _payload_cached(self, unique_id: int, ratio: float) -> bytes:
        cache = self._payload_cache
        payload = cache.get(unique_id)
        if payload is not None:
            cache.move_to_end(unique_id)
            if self.verifier is not None:
                self.verifier.on_hit(
                    "vdbench-payload", payload,
                    lambda: self._payload_for(unique_id, ratio))
            return payload
        payload = self._payload_for(unique_id, ratio)
        if len(cache) >= PAYLOAD_CACHE_ENTRIES:
            cache.popitem(last=False)
        cache[unique_id] = payload
        return payload

    def next_batch(self, n: int) -> ChunkBatch:
        """Emit the next ``n`` chunks as one :class:`ChunkBatch`.

        Consumes the stream RNG in exactly the per-chunk order (one
        dup-coin draw per chunk once a unique exists, one ratio draw
        per new unique, dup picks via the same locality walk), so
        ``next_batch(n).materialize()`` equals ``[next_chunk() for _ in
        range(n)]`` element-wise — the workload equivalence suite holds
        both paths to that.
        """
        if n < 1:
            raise WorkloadError(f"batch size must be >= 1, got {n}")
        if self.chunk_size <= 0:
            # Same error the per-chunk path's Chunk validation raises.
            raise ConfigError(f"invalid chunk size {self.chunk_size}")
        # The decision kernel below inlines _pick_duplicate_id and
        # _draw_ratio: every RNG draw happens in the per-chunk order, so
        # the stream stays bit-identical while the batch drops the
        # per-chunk method-call overhead.
        rng = self._rng
        rng_random = rng.random
        rng_randrange = rng.randrange
        rng_gauss = rng.gauss
        ratios = self._unique_ratios
        append_ratio = ratios.append
        dup_probability = self._dup_probability
        locality = self.locality
        working_set = self.working_set
        mean_ratio = self.comp_ratio
        sigma = mean_ratio * self.comp_spread
        stats = self.stats
        fps = None if self.payload else self._unique_fps
        fp_prefix = f"vdbench:{self.seed}:"
        sha1 = hashlib.sha1
        unique_ids: list[int] = []
        append_uid = unique_ids.append
        duplicates = 0
        for _ in range(n):
            n_uniques = len(ratios)
            if n_uniques and rng_random() < dup_probability:
                if locality and rng_random() < locality:
                    window = (working_set if working_set < n_uniques
                              else n_uniques)
                    unique_id = rng_randrange(n_uniques - window,
                                              n_uniques)
                else:
                    unique_id = rng_randrange(n_uniques)
                duplicates += 1
                ratio = ratios[unique_id]
            else:
                unique_id = n_uniques
                ratio = max(1.0, rng_gauss(mean_ratio, sigma))
                append_ratio(ratio)
                if fps is not None and unique_id not in fps:
                    fps[unique_id] = sha1(
                        (fp_prefix + str(unique_id)).encode()).digest()
            append_uid(unique_id)
            # Order-faithful float accumulation (matches next_chunk).
            stats.ratio_sum += ratio

        size = self.chunk_size
        offsets = self._offset + size * np.arange(n, dtype=np.int64)
        sizes = np.full(n, size, dtype=np.int64)
        if self.payload:
            payloads = [self._payload_cached(uid, ratios[uid])
                        for uid in unique_ids]
            fingerprints: list = [None] * n
            comp_ratios: list = [None] * n
        else:
            payloads = [None] * n
            # Creation-time fills above make this all dict hits; the
            # cached fallback covers uniques minted by next_chunk before
            # the stream switched to batched emission.
            fps_get = fps.get
            fp_fill = self._fingerprint_cached
            fingerprints = [fps_get(uid) or fp_fill(uid)
                            for uid in unique_ids]
            comp_ratios = [ratios[uid] for uid in unique_ids]
        self._offset += size * n
        stats.chunks += n
        stats.uniques += n - duplicates
        stats.duplicates += duplicates
        stats.bytes_emitted += size * n
        if self.verifier is not None:
            # REP702 runtime twin: emitted columns are shared views —
            # an aliasing write downstream must raise, not corrupt.
            self.verifier.freeze_array(offsets)
            self.verifier.freeze_array(sizes)
        # The emitting stream validated every column by construction.
        return ChunkBatch(offsets, sizes, payloads, fingerprints,
                          comp_ratios, validate=False)

    def chunks_batched(self, n: int, window: int = 64) -> Iterator[Chunk]:
        """Emit ``n`` chunks, materialized window-at-a-time.

        The batched pipeline feeder's source: same chunks as
        :meth:`chunks`, produced through :meth:`next_batch` windows.
        """
        if window < 1:
            raise WorkloadError(f"window must be >= 1, got {window}")
        remaining = n
        while remaining > 0:
            take = window if window < remaining else remaining
            yield from self.next_batch(take).materialize()
            remaining -= take

    def chunks_for_bytes(self, total_bytes: int) -> Iterator[Chunk]:
        """Emit chunks until ``total_bytes`` of stream have been produced."""
        emitted = 0
        while emitted < total_bytes:
            chunk = self.next_chunk()
            emitted += chunk.size
            yield chunk
