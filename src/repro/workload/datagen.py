"""Block-content generation with a target compression ratio.

vdbench's ``compratio=`` dial produces data that compresses by roughly the
requested factor.  We reproduce it by mixing two ingredient textures in
one block:

* *pattern* bytes — a short repeating motif that LZ compresses heavily;
* *random* bytes — full-entropy noise that slightly expands under LZ.

Given the measured per-texture ratios of the library's LZSS codec, the
mixing fraction for a target ratio follows from the harmonic mix
(compressed sizes add, so *reciprocal* ratios mix linearly).  A secant
calibration loop then polishes the fraction against the real codec, since
the analytic ingredient ratios are only approximate.
"""

from __future__ import annotations

import random

from repro.compression import LzssCodec
from repro.errors import WorkloadError

#: Approximate LZSS ratio on the pure repeating motif (12-bit window,
#: 18-byte max match ≈ 8.5x).
_PATTERN_RATIO = 8.5
#: Approximate LZSS "ratio" on pure noise (flag-bit expansion ≈ 0.889x).
_RANDOM_RATIO = 0.889
#: Motif repeated through the pattern texture.
_MOTIF = bytes(range(37, 69))


def analytic_random_fraction(target_ratio: float) -> float:
    """Fraction of random bytes whose harmonic mix hits ``target_ratio``."""
    if target_ratio < 1.0:
        raise WorkloadError(f"compression ratio must be >= 1.0, "
                            f"got {target_ratio}")
    inv_target = 1.0 / target_ratio
    inv_random = 1.0 / _RANDOM_RATIO
    inv_pattern = 1.0 / _PATTERN_RATIO
    fraction = (inv_target - inv_pattern) / (inv_random - inv_pattern)
    return min(1.0, max(0.0, fraction))


def measured_ratio(block: bytes) -> float:
    """Actual LZSS compression ratio of ``block``."""
    if not block:
        return 1.0
    return len(block) / len(LzssCodec().encode(block))


class BlockContentGenerator:
    """Deterministic generator of blocks with a target compression ratio."""

    def __init__(self, target_ratio: float, *, seed: int,
                 granule: int = 64):
        if granule < 8:
            raise WorkloadError(f"granule too small: {granule}")
        self.target_ratio = target_ratio
        self.granule = granule
        self._seed = seed
        self.random_fraction = analytic_random_fraction(target_ratio)

    def make_block(self, size: int, salt: int = 0) -> bytes:
        """One block of ``size`` bytes; ``salt`` decorrelates blocks.

        The block is built granule by granule — random granules with
        probability ``random_fraction``, motif granules otherwise — from a
        per-block RNG, so the same (seed, salt) always regenerates the
        identical block (duplicates in payload mode rely on this).
        """
        if size <= 0:
            raise WorkloadError(f"invalid block size {size}")
        rng = random.Random(f"{self._seed}:{salt}")
        out = bytearray()
        while len(out) < size:
            take = min(self.granule, size - len(out))
            if rng.random() < self.random_fraction:
                out.extend(rng.randrange(256) for _ in range(take))
            else:
                phase = rng.randrange(len(_MOTIF))
                motif = _MOTIF[phase:] + _MOTIF[:phase]
                reps = (take // len(motif)) + 1
                out.extend((motif * reps)[:take])
        return bytes(out)

    def calibrate(self, size: int = 4096, samples: int = 4,
                  iterations: int = 6, tolerance: float = 0.05) -> float:
        """Refine ``random_fraction`` against the real codec.

        Returns the achieved mean ratio.  Secant-style updates on the
        reciprocal ratio, which is nearly linear in the fraction.
        """
        def measure(fraction: float) -> float:
            saved = self.random_fraction
            self.random_fraction = fraction
            ratios = [measured_ratio(self.make_block(size, salt=1000 + s))
                      for s in range(samples)]
            self.random_fraction = saved
            return sum(ratios) / len(ratios)

        inv_target = 1.0 / self.target_ratio
        f_prev, r_prev = 0.0, measure(0.0)
        f_here = self.random_fraction
        r_here = measure(f_here)
        for _ in range(iterations):
            if abs(r_here - self.target_ratio) / self.target_ratio \
                    <= tolerance:
                break
            inv_prev, inv_here = 1.0 / r_prev, 1.0 / r_here
            if inv_here == inv_prev or f_here == f_prev:
                break
            # Secant step on the reciprocal ratio (nearly linear in f).
            f_next = f_here + (inv_target - inv_here) \
                * (f_here - f_prev) / (inv_here - inv_prev)
            f_next = min(1.0, max(0.0, f_next))
            f_prev, r_prev = f_here, r_here
            f_here, r_here = f_next, measure(f_next)
        self.random_fraction = f_here
        return r_here
