"""In-memory B-tree: the structure behind each CPU bin ("bin tree").

The paper contrasts the GPU's *linear table* bins with the CPU's tree
bins (§3.1(2): "we organize one bin into a linear table structure rather
than a tree structure") — so the CPU side gets a real B-tree, not a dict.
The tree's height also feeds the CPU cost model: a probe charges
``bin_tree_probe_per_level`` per level walked.

Classic CLRS B-tree with minimum degree ``t``: every node holds between
``t-1`` and ``2t-1`` keys (root exempt below), split-on-the-way-down
insertion, no deletion (dedup indexes only grow during a run; whole bins
are dropped at once).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Iterator, Optional

from repro.errors import IndexError_


class _Node:
    __slots__ = ("keys", "values", "children", "leaf")

    def __init__(self, leaf: bool):
        self.keys: list[bytes] = []
        self.values: list[Any] = []
        self.children: list["_Node"] = []
        self.leaf = leaf


class BTree:
    """B-tree mapping byte-string keys to arbitrary values."""

    __slots__ = ("_t", "_root", "_size", "_height")

    def __init__(self, min_degree: int = 16):
        if min_degree < 2:
            raise IndexError_(f"min degree must be >= 2, got {min_degree}")
        self._t = min_degree
        self._root = _Node(leaf=True)
        self._size = 0
        self._height = 1

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Number of levels a search walks (1 for a lone root)."""
        return self._height

    # -- search -----------------------------------------------------------

    def search(self, key: bytes) -> Optional[Any]:
        """Value stored under ``key``, or None."""
        node = self._root
        while True:
            i = self._lower_bound(node.keys, key)
            if i < len(node.keys) and node.keys[i] == key:
                return node.values[i]
            if node.leaf:
                return None
            node = node.children[i]

    def __contains__(self, key: bytes) -> bool:
        return self.search(key) is not None

    # C-speed binary search: identical result to the historical Python
    # loop (first index whose key is >= the probe key).
    _lower_bound = staticmethod(bisect_left)

    # -- insertion ---------------------------------------------------------

    def insert(self, key: bytes, value: Any) -> bool:
        """Insert ``key``; returns False (and updates the value) if present."""
        root = self._root
        if len(root.keys) == 2 * self._t - 1:
            new_root = _Node(leaf=False)
            new_root.children.append(root)
            self._split_child(new_root, 0)
            self._root = new_root
            self._height += 1
        return self._insert_nonfull(self._root, key, value)

    def _split_child(self, parent: _Node, index: int) -> None:
        t = self._t
        child = parent.children[index]
        sibling = _Node(leaf=child.leaf)
        # Median key moves up; upper half moves to the new sibling.
        parent.keys.insert(index, child.keys[t - 1])
        parent.values.insert(index, child.values[t - 1])
        parent.children.insert(index + 1, sibling)
        sibling.keys = child.keys[t:]
        sibling.values = child.values[t:]
        child.keys = child.keys[:t - 1]
        child.values = child.values[:t - 1]
        if not child.leaf:
            sibling.children = child.children[t:]
            child.children = child.children[:t]

    def _insert_nonfull(self, node: _Node, key: bytes, value: Any) -> bool:
        while True:
            i = self._lower_bound(node.keys, key)
            if i < len(node.keys) and node.keys[i] == key:
                node.values[i] = value
                return False
            if node.leaf:
                node.keys.insert(i, key)
                node.values.insert(i, value)
                self._size += 1
                return True
            if len(node.children[i].keys) == 2 * self._t - 1:
                self._split_child(node, i)
                if node.keys[i] == key:
                    node.values[i] = value
                    return False
                if key > node.keys[i]:
                    i += 1
            node = node.children[i]

    def insert_run(self, pairs: "list[tuple[bytes, Any]]") -> int:
        """Insert a run of (key, value) pairs; returns the new-key count.

        Fast path: a *duplicate-free* run landing in a *fresh* tree
        that fits one node is installed as a single sorted leaf.  That
        is provably the shape split-on-the-way-down insertion builds —
        n <= 2t-1 unique inserts into an empty tree never split, so the
        keys accumulate sorted in the root leaf.  A run with repeated
        keys must fall back: a repeat arriving while the root is full
        splits it preemptively (split-on-the-way-down checks fullness
        before noticing the key exists), growing the tree a plain leaf
        build would not.  Every other case also falls back to per-entry
        :meth:`insert` in original order, preserving the exact
        historical split sequence (and thus the tree height the CPU
        cost model charges for).
        """
        root = self._root
        if self._size == 0 and root.leaf and not root.keys:
            run: dict[bytes, Any] = {}
            for key, value in pairs:
                run[key] = value
            if len(run) == len(pairs) and len(run) <= 2 * self._t - 1:
                ordered = sorted(run.items())
                root.keys = [key for key, _ in ordered]
                root.values = [value for _, value in ordered]
                self._size = len(ordered)
                return self._size
        before = self._size
        for key, value in pairs:
            self.insert(key, value)
        return self._size - before

    # -- iteration ----------------------------------------------------------

    def items(self) -> Iterator[tuple[bytes, Any]]:
        """All (key, value) pairs in ascending key order."""
        yield from self._walk(self._root)

    def _walk(self, node: _Node) -> Iterator[tuple[bytes, Any]]:
        if node.leaf:
            yield from zip(node.keys, node.values)
            return
        for i, key in enumerate(node.keys):
            yield from self._walk(node.children[i])
            yield key, node.values[i]
        yield from self._walk(node.children[-1])

    # -- diagnostics --------------------------------------------------------

    def check_invariants(self) -> None:
        """Verify B-tree structural invariants (test hook)."""
        self._check_node(self._root, is_root=True, depth=0,
                         leaf_depths=set())

    def _check_node(self, node: _Node, is_root: bool, depth: int,
                    leaf_depths: set[int]) -> None:
        t = self._t
        if not is_root and len(node.keys) < t - 1:
            raise IndexError_(f"underfull node at depth {depth}")
        if len(node.keys) > 2 * t - 1:
            raise IndexError_(f"overfull node at depth {depth}")
        if node.keys != sorted(node.keys):
            raise IndexError_(f"unsorted keys at depth {depth}")
        if len(node.keys) != len(node.values):
            raise IndexError_(f"key/value mismatch at depth {depth}")
        if node.leaf:
            leaf_depths.add(depth)
            if len(leaf_depths) > 1:
                raise IndexError_("leaves at differing depths")
            return
        if len(node.children) != len(node.keys) + 1:
            raise IndexError_(f"child-count mismatch at depth {depth}")
        for i, child in enumerate(node.children):
            if i > 0 and child.keys and child.keys[0] <= node.keys[i - 1]:
                raise IndexError_("separator order violated (left)")
            if i < len(node.keys) and child.keys \
                    and child.keys[-1] >= node.keys[i]:
                raise IndexError_("separator order violated (right)")
            self._check_node(child, is_root=False, depth=depth + 1,
                             leaf_depths=leaf_depths)
