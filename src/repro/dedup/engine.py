"""Deduplication engine: functional state machine plus cost accounting.

This class owns the dedup data structures (bin buffer, bin trees,
optional GPU bins, chunk metadata) and exposes the *operations* of the
paper's Fig. 1 workflow.  Every operation returns both its functional
outcome and the CPU cycles it costs, so the timed pipeline can charge the
simulated CPU without this module knowing anything about simulation.

Lookup order on the CPU path follows the paper exactly: bin buffer first
("recently updated chunks can reside in the bin buffer and chunks are
more likely to find duplicates in the bin buffer due to temporal
locality"), then the bin tree.  Unique chunks are staged in the bin
buffer; a full bin flushes as one unit — entries move to the bin tree and
the GPU bins, and the bin's compressed data destages as one sequential
write.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cpu.costs import CpuCosts, DEFAULT_COSTS
from repro.dedup.bin_buffer import BinBuffer
from repro.dedup.bins import BinTable
from repro.dedup.gpu_index import GpuBinIndex
from repro.dedup.index_base import (FingerprintView, decompose,
                                    decomposition_cache)
from repro.errors import DedupError
from repro.obs.stages import (
    CTR_BUFFER_HITS,
    CTR_FLUSHES,
    CTR_GPU_HITS,
    CTR_RACE_DUPLICATES,
    CTR_RESTARTS,
    CTR_TREE_HITS,
    CTR_UNIQUES,
    DEDUP_COUNTER_KEYS,
)
from repro.storage.metadata import MetadataStore
from repro.types import Chunk


@dataclass(slots=True)
class IndexOutcome:
    """Result of running a chunk through the CPU indexing path."""

    duplicate: bool
    #: Where the decision fell: "buffer", "tree", or "unique".
    path: str
    cpu_cycles: float


@dataclass(slots=True)
class DestageBatch:
    """One flushed bin's worth of compressed data, written sequentially."""

    bin_id: int
    chunk_count: int
    payload_bytes: int


@dataclass(slots=True)
class _StagedInfo:
    """Bin-buffer value: what a flush needs to know per staged chunk."""

    size: int
    compressed_size: int


class DedupEngine:
    """Functional dedup state with per-operation cycle costs."""

    __slots__ = ("costs", "bin_table", "bin_buffer", "gpu_index",
                 "metadata", "_prefix_bytes", "_decompose_cache",
                 "counters")

    def __init__(self, prefix_bytes: int = 2, btree_min_degree: int = 16,
                 bin_buffer_capacity: int = 64,
                 bin_buffer_total: Optional[int] = None,
                 gpu_index: Optional[GpuBinIndex] = None,
                 metadata: Optional[MetadataStore] = None,
                 costs: CpuCosts = DEFAULT_COSTS):
        self.costs = costs
        self.bin_table = BinTable(prefix_bytes=prefix_bytes,
                                  min_degree=btree_min_degree)
        self.bin_buffer = BinBuffer(prefix_bytes=prefix_bytes,
                                    per_bin_capacity=bin_buffer_capacity,
                                    total_capacity=bin_buffer_total)
        self.gpu_index = gpu_index
        self.metadata = metadata if metadata is not None else MetadataStore()
        self._prefix_bytes = prefix_bytes
        self._decompose_cache = decomposition_cache(prefix_bytes)
        # -- Fig. 1 edge counters --
        # Every counter any consumer bumps or reads is seeded here, so
        # reports always carry the full key set (a counter that never
        # fired reads 0, not KeyError/absent) and bump sites can use a
        # plain += instead of re-deriving the default with .get().
        self.counters = {key: 0 for key in DEDUP_COUNTER_KEYS}

    # -- stage costs --------------------------------------------------------

    def ingest_cycles(self, chunk: Chunk,
                      content_defined: bool = False) -> float:
        """CPU cycles for the chunking + hashing stages of one chunk."""
        return (self.costs.chunking_cycles(chunk.size, content_defined)
                + self.costs.sha1_cycles(chunk.size))

    # -- indexing (CPU path) ----------------------------------------------------

    def _view(self, fingerprint: bytes) -> FingerprintView:
        # Inlined decomposition-cache probe (the `decompose` fast path,
        # minus one call frame — this runs once per chunk).
        try:
            return self._decompose_cache[fingerprint]
        except (KeyError, TypeError):
            return decompose(fingerprint, self._prefix_bytes,
                             self._decompose_cache)

    def cpu_index(self, chunk: Chunk) -> IndexOutcome:
        """Bin-buffer probe, then bin-tree probe (Fig. 1's CPU path)."""
        view = self._view(chunk.require_fingerprint())
        cycles = self.costs.bin_buffer_probe
        if self.bin_buffer.lookup_view(view) is not None:
            self.counters[CTR_BUFFER_HITS] += 1
            chunk.is_duplicate = True
            return IndexOutcome(True, "buffer", cycles)
        depth, value = self.bin_table.probe_view(view)
        cycles += self.costs.bin_tree_probe(depth)
        if value is not None:
            self.counters[CTR_TREE_HITS] += 1
            chunk.is_duplicate = True
            return IndexOutcome(True, "tree", cycles)
        chunk.is_duplicate = False
        return IndexOutcome(False, "unique", cycles)

    def cpu_index_partial(self, chunk: Chunk) -> IndexOutcome:
        """Buffer-probe-only indexing, used after a *definitive* GPU miss.

        When the GPU index has never evicted, it mirrors every entry that
        ever reached the bin tree, so a GPU miss proves the tree would
        miss too — only the bin buffer (entries newer than the last
        flush) still needs checking.
        """
        view = self._view(chunk.require_fingerprint())
        cycles = self.costs.bin_buffer_probe
        if self.bin_buffer.lookup_view(view) is not None:
            self.counters[CTR_BUFFER_HITS] += 1
            chunk.is_duplicate = True
            return IndexOutcome(True, "buffer", cycles)
        chunk.is_duplicate = False
        return IndexOutcome(False, "unique", cycles)

    def note_gpu_hit(self, chunk: Chunk) -> float:
        """Record a GPU-index duplicate; returns metadata-update cycles."""
        self.counters[CTR_GPU_HITS] += 1
        chunk.is_duplicate = True
        return self.commit_duplicate(chunk)

    # -- commits ------------------------------------------------------------

    def commit_duplicate(self, chunk: Chunk) -> float:
        """Map a duplicate chunk onto its stored copy; returns cycles."""
        fingerprint = chunk.require_fingerprint()
        record = self.metadata.lookup(fingerprint)
        if record is None:
            raise DedupError(
                "duplicate verdict for a fingerprint with no stored chunk")
        self.metadata.map_logical(chunk.offset, fingerprint, chunk.size)
        chunk.compressed_size = record.compressed_size
        return self.costs.metadata_update

    def commit_unique(self, chunk: Chunk,
                      blob: Optional[bytes] = None,
                      checksum: Optional[int] = None
                      ) -> tuple[float, Optional[DestageBatch], bool]:
        """Store a compressed unique chunk; stage its fingerprint.

        Returns ``(cycles, destage_batch_or_none, was_actually_unique)``.
        Two in-flight copies of the same content can both take the unique
        path; the commit revalidates against metadata and downgrades the
        loser to a duplicate — standard inline-dedup practice.
        """
        fingerprint = chunk.require_fingerprint()
        if self.metadata.lookup(fingerprint) is not None:
            # Lost the in-flight race: another worker stored it first.
            self.counters[CTR_RACE_DUPLICATES] += 1
            cycles = self.commit_duplicate(chunk)
            return cycles, None, False

        if chunk.compressed_size is None:
            chunk.compressed_size = chunk.size
        self.counters[CTR_UNIQUES] += 1
        self.metadata.store_unique(fingerprint, chunk.size,
                                   chunk.compressed_size, blob=blob,
                                   checksum=checksum)
        self.metadata.map_logical(chunk.offset, fingerprint, chunk.size)
        cycles = (self.costs.bin_buffer_insert
                  + self.costs.metadata_update
                  + self.costs.flush_amortized_per_unique)
        flush = self.bin_buffer.add_view(
            self._view(fingerprint),
            _StagedInfo(size=chunk.size,
                        compressed_size=chunk.compressed_size))
        batch = self._apply_flush(flush) if flush is not None else None
        return cycles, batch, True

    def _apply_flush(self, flush) -> DestageBatch:
        """Move a flushed bin into the bin tree and the GPU bins.

        Every flushed fingerprint is decomposed exactly once here (a
        cache hit when the fingerprint was probed on ingest) and the
        resulting views feed both the bin-tree run install and the GPU
        bin install, so neither side re-slices anything.
        """
        self.counters[CTR_FLUSHES] += 1
        cache = self._decompose_cache
        pb = self._prefix_bytes
        views = [decompose(fp, pb, cache) for fp, _ in flush.entries]
        values = [info for _, info in flush.entries]
        self.bin_table.install_views(flush.bin_id, views, values)
        payload = sum(info.compressed_size for info in values)
        gpu = self.gpu_index
        if gpu is not None:
            if gpu.prefix_bytes == pb:
                gpu.install_views(views)
            else:
                gpu.update_from_flush(flush.entries)
        return DestageBatch(bin_id=flush.bin_id,
                            chunk_count=flush.count,
                            payload_bytes=payload)

    def drain(self) -> list[DestageBatch]:
        """Flush every partially filled bin (end of stream)."""
        return [self._apply_flush(event)
                for event in self.bin_buffer.flush_all()]

    def restart(self) -> list[DestageBatch]:
        """Simulate a clean restart: destage staged data, lose the index.

        The paper keeps index entries "in memory space only, not disk
        space", so after a restart the engine can no longer find any
        previously stored duplicate — rewritten content is stored again
        (quantified by experiment A9).  Stored data itself survives:
        logical offsets still resolve through the metadata.

        Returns the final destage batches of the shutdown drain.
        """
        batches = self.drain()
        self.bin_table = BinTable(
            prefix_bytes=self.bin_table.prefix_bytes,
            min_degree=self.bin_table.min_degree)
        if self.gpu_index is not None:
            self.gpu_index.clear()
        self.metadata.detach_fingerprint_index()
        self.counters[CTR_RESTARTS] += 1
        return batches

    # -- reporting --------------------------------------------------------

    def dedup_ratio(self) -> float:
        """Achieved logical/unique ratio from the metadata ledger."""
        return self.metadata.dedup_ratio()

    def index_entries(self) -> int:
        """Entries across tree + buffer (GPU mirrors a subset)."""
        return len(self.bin_table) + len(self.bin_buffer)
