"""Bin-based CPU fingerprint index (paper §3.1(1)).

The global hash table is split into ``256 ** prefix_bytes`` independent
*bins* keyed by the fingerprint's leading bytes.  Because a fingerprint
lands in exactly one bin, threads working on different bins never touch
the same structure — "multiple computing threads can check the chunks of
multiple hash tables at the same time without locking mechanism".

Two memory decisions follow the paper exactly:

* entries live in RAM only — there is no disk index, so some duplicates
  may be missed after a restart, "but that is not a big deal" for primary
  storage;
* **prefix truncation** — the bin number *is* the prefix, so each entry
  stores only the remaining ``20 - prefix_bytes`` fingerprint bytes.
  :meth:`BinTable.memory_bytes` reproduces the paper's sizing arithmetic
  (4 TB / 8 KB chunks at 32 B/entry = 16 GB; a 2-byte prefix saves 1 GB).

Each bin is a B-tree (the "bin tree"), whose height feeds the CPU probe
cost model.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from repro.dedup.btree import BTree
from repro.dedup.index_base import (FingerprintView, decompose,
                                    decomposition_cache)
from repro.errors import IndexError_
from repro.types import FINGERPRINT_BYTES


class BinTable:
    """Prefix-partitioned, prefix-truncated fingerprint index."""

    __slots__ = ("prefix_bytes", "min_degree", "n_bins", "_bins",
                 "_size", "_cache", "lookups", "hits")

    def __init__(self, prefix_bytes: int = 2, min_degree: int = 16):
        if not 1 <= prefix_bytes <= 4:
            raise IndexError_(
                f"prefix_bytes must be in [1, 4], got {prefix_bytes}")
        self.prefix_bytes = prefix_bytes
        self.min_degree = min_degree
        self.n_bins = 256 ** prefix_bytes
        # Bins are created lazily: most of a large bin space stays empty.
        self._bins: dict[int, BTree] = {}
        self._size = 0
        self._cache = decomposition_cache(prefix_bytes)
        # -- statistics --
        self.lookups = 0
        self.hits = 0

    # -- key handling ----------------------------------------------------------

    def _view(self, fingerprint: bytes) -> FingerprintView:
        return decompose(fingerprint, self.prefix_bytes, self._cache)

    def bin_of(self, fingerprint: bytes) -> int:
        """Bin number: the integer value of the fingerprint prefix."""
        return self._view(fingerprint).bin_id

    def suffix_of(self, fingerprint: bytes) -> bytes:
        """Stored key: the fingerprint with its prefix truncated away."""
        return self._view(fingerprint).suffix

    # -- FingerprintIndex interface ---------------------------------------------

    def lookup(self, fingerprint: bytes) -> Optional[Any]:
        """Stored value for ``fingerprint``, or None."""
        try:  # zero-cost on the decomposition-cache hit path
            view = self._cache[fingerprint]
        except (KeyError, TypeError):
            view = decompose(fingerprint, self.prefix_bytes, self._cache)
        self.lookups += 1
        tree = self._bins.get(view.bin_id)
        if tree is None:
            return None
        value = tree.search(view.suffix)
        if value is not None:
            self.hits += 1
        return value

    def insert(self, fingerprint: bytes, value: Any) -> bool:
        """Store ``value``; returns True if the fingerprint was new."""
        view = self._view(fingerprint)
        tree = self._bins.get(view.bin_id)
        if tree is None:
            tree = BTree(min_degree=self.min_degree)
            self._bins[view.bin_id] = tree
        was_new = tree.insert(view.suffix, value)
        if was_new:
            self._size += 1
        return was_new

    def install_flush(self, bin_id: int,
                      entries: "tuple[tuple[bytes, Any], ...]") -> int:
        """Install one flushed bin's (fingerprint, value) run at once.

        The entries all belong to ``bin_id`` (the bin buffer flushes one
        bin at a time), so the per-entry bin dispatch happens once and
        the B-tree receives the whole sorted run via
        :meth:`~repro.dedup.btree.BTree.insert_run`.  Returns the number
        of new keys; tree shape is byte-identical to per-entry inserts.
        """
        if not entries:
            return 0
        return self.install_views(
            bin_id, [self._view(fp) for fp, _ in entries],
            [value for _, value in entries])

    def install_views(self, bin_id: int, views: "list[FingerprintView]",
                      values: "list[Any]") -> int:
        """:meth:`install_flush` over pre-decomposed views."""
        if not views:
            return 0
        tree = self._bins.get(bin_id)
        if tree is None:
            tree = BTree(min_degree=self.min_degree)
            self._bins[bin_id] = tree
        installed = tree.insert_run(
            [(view.suffix, value) for view, value in zip(views, values)])
        self._size += installed
        return installed

    def __len__(self) -> int:
        return self._size

    def __contains__(self, fingerprint: bytes) -> bool:
        view = self._view(fingerprint)
        tree = self._bins.get(view.bin_id)
        return tree is not None and view.suffix in tree

    # -- geometry / cost hooks ---------------------------------------------------

    def bin_depth(self, fingerprint: bytes) -> int:
        """Levels a probe for ``fingerprint`` walks (>= 1)."""
        try:  # zero-cost on the decomposition-cache hit path
            view = self._cache[fingerprint]
        except (KeyError, TypeError):
            view = decompose(fingerprint, self.prefix_bytes, self._cache)
        tree = self._bins.get(view.bin_id)
        return tree.height if tree is not None else 1

    def probe_view(self, view: FingerprintView) -> "tuple[int, Optional[Any]]":
        """(bin depth, stored value) in one bin dispatch.

        Equivalent to :meth:`bin_depth` followed by :meth:`lookup` —
        same statistics, same cost-model depth — but the hot engine path
        pays one dict probe and no re-decomposition.
        """
        tree = self._bins.get(view.bin_id)
        self.lookups += 1
        if tree is None:
            return 1, None
        value = tree.search(view.suffix)
        if value is not None:
            self.hits += 1
        return tree.height, value

    def occupied_bins(self) -> int:
        """Bins holding at least one entry."""
        return len(self._bins)

    def bin_sizes(self) -> Iterator[int]:
        """Entry count of every occupied bin."""
        for tree in self._bins.values():
            yield len(tree)

    def balance(self) -> float:
        """mean/max bin occupancy over occupied bins (1.0 = perfect)."""
        sizes = list(self.bin_sizes())
        if not sizes:
            return 1.0
        peak = max(sizes)
        return (sum(sizes) / len(sizes)) / peak if peak else 1.0

    # -- memory accounting ---------------------------------------------------

    def memory_bytes(self, metadata_bytes: int = 12) -> int:
        """Index RAM at ``metadata_bytes`` of non-key payload per entry.

        The paper's 32 B entry = 20 B SHA-1 + 12 B metadata; truncation
        shaves ``prefix_bytes`` off the key part of every entry.
        """
        key_bytes = FINGERPRINT_BYTES - self.prefix_bytes
        return self._size * (key_bytes + metadata_bytes)

    def memory_saved_bytes(self) -> int:
        """RAM the prefix truncation saves versus storing full hashes."""
        return self._size * self.prefix_bytes

    def hit_rate(self) -> float:
        """Fraction of lookups that found their fingerprint."""
        return self.hits / self.lookups if self.lookups else 0.0

    def items(self) -> Iterator[tuple[int, bytes, Any]]:
        """All (bin_id, suffix, value) triples, bin by bin."""
        for bin_id, tree in self._bins.items():
            for suffix, value in tree.items():
                yield bin_id, suffix, value
