"""Rabin rolling fingerprint for content-defined chunking.

A polynomial rolling hash over a sliding window: appending a byte and
expelling the oldest costs O(1), which is what lets the content-defined
chunker scan a stream in one pass.  The chunker declares a boundary
wherever ``hash % divisor == target``, so identical content produces
identical chunk boundaries regardless of alignment — the property that
makes CDC dedup robust against insertions.
"""

from __future__ import annotations

from repro.errors import ChunkingError

#: Default multiplier: an odd constant with good mixing (from PJW/Rabin
#: implementations); anything odd works, determinism is what matters.
DEFAULT_BASE = 0x3DF29C4B
_MASK64 = (1 << 64) - 1


class RabinFingerprint:
    """Rolling hash over a fixed-size window of bytes."""

    __slots__ = ("window", "base", "_expel", "_hash", "_buffer",
                 "_pos")

    def __init__(self, window: int = 48, base: int = DEFAULT_BASE):
        if window < 1:
            raise ChunkingError(f"invalid window {window}")
        if base % 2 == 0:
            raise ChunkingError("base must be odd for full-period mixing")
        self.window = window
        self.base = base
        #: base**window mod 2**64, used to expel the oldest byte.
        self._expel = pow(base, window, 1 << 64)
        self.reset()

    def reset(self) -> None:
        """Forget all state (start of a new stream)."""
        self._hash = 0
        self._buffer: list[int] = []
        self._pos = 0

    @property
    def value(self) -> int:
        """Current 64-bit hash of the window."""
        return self._hash

    @property
    def primed(self) -> bool:
        """True once a full window has been absorbed."""
        return len(self._buffer) >= self.window

    def roll(self, byte: int) -> int:
        """Slide the window one byte forward; returns the new hash."""
        if not 0 <= byte <= 255:
            raise ChunkingError(f"invalid byte {byte}")
        self._hash = (self._hash * self.base + byte + 1) & _MASK64
        if len(self._buffer) < self.window:
            self._buffer.append(byte)
        else:
            oldest = self._buffer[self._pos]
            self._buffer[self._pos] = byte
            self._pos = (self._pos + 1) % self.window
            self._hash = (self._hash
                          - (oldest + 1) * self._expel) & _MASK64
        return self._hash

    def hash_window(self, data: bytes) -> int:
        """Hash of exactly one window worth of bytes (reference path)."""
        if len(data) != self.window:
            raise ChunkingError(
                f"expected {self.window} bytes, got {len(data)}")
        value = 0
        for byte in data:
            value = (value * self.base + byte + 1) & _MASK64
        return value
