"""Fingerprint-index interface plus the trivial reference implementation.

Every index variant (the CPU bin table, the GPU linear bins, the plain
dict used as ground truth in property tests) answers the same question:
*have we stored a chunk with this fingerprint before?*

This module also owns the **decomposition cache**: every consumer of a
fingerprint needs some slice of the same four derived values — the bin
number (prefix), the truncated suffix, and the two big-endian u64 lanes
the GPU bins compare on.  :func:`decompose` computes them once per
(fingerprint, prefix_bytes) pair and every index component reads the
shared :class:`FingerprintView` instead of re-validating and re-slicing
the raw bytes.  It is the single audited slicing site in ``repro.dedup``
(lint rule REP503 flags any other per-fingerprint ``int.from_bytes`` or
slice in this package).
"""

from __future__ import annotations

from typing import Any, NamedTuple, Optional, Protocol, runtime_checkable

from repro.errors import IndexError_
from repro.types import FINGERPRINT_BYTES

#: Suffix bytes the GPU entry actually compares (two u64 lanes).
SUFFIX_WORD_BYTES = 16


def check_fingerprint(fingerprint: bytes) -> bytes:
    """Validate a fingerprint's type and length."""
    if not isinstance(fingerprint, (bytes, bytearray)):
        raise IndexError_(f"fingerprint must be bytes, got "
                          f"{type(fingerprint).__name__}")
    if len(fingerprint) != FINGERPRINT_BYTES:
        raise IndexError_(
            f"fingerprint must be {FINGERPRINT_BYTES} bytes, "
            f"got {len(fingerprint)}")
    return bytes(fingerprint)


class FingerprintView(NamedTuple):
    """One fingerprint, validated and decomposed exactly once.

    ``bin_id``/``suffix`` serve the CPU side (bin table, bin buffer);
    ``lo``/``hi`` are the two big-endian u64 lanes of ``suffix[:16]``
    the GPU linear bins store and compare.  All four are derived from
    the same bytes, so any component holding a view may hand it to any
    other component with the same ``prefix_bytes``.
    """

    bin_id: int
    suffix: bytes
    lo: int
    hi: int


#: Bound per prefix width; beyond it the oldest insertion is dropped.
DECOMPOSE_CACHE_ENTRIES = 1 << 16

_CACHES: dict[int, dict[bytes, FingerprintView]] = {}


def decomposition_cache(prefix_bytes: int) -> dict[bytes, FingerprintView]:
    """The shared fingerprint→view cache for one prefix width.

    Components created with the same ``prefix_bytes`` (bin buffer, bin
    table, GPU bins, engine) all hand out views from the same dict, so
    a fingerprint decomposed on the buffer probe is a cache hit by the
    time the flush installs it into the tree and the GPU bin.
    """
    cache = _CACHES.get(prefix_bytes)
    if cache is None:
        cache = _CACHES[prefix_bytes] = {}
    return cache


def decompose(fingerprint: bytes, prefix_bytes: int,
              cache: Optional[dict[bytes, FingerprintView]] = None,
              ) -> FingerprintView:
    """Validated :class:`FingerprintView` for ``fingerprint``.

    The fast path is one dict probe.  On a miss the fingerprint is
    validated via :func:`check_fingerprint` (identical errors to the
    historical per-call validation) and decomposed once; the view is
    then cached FIFO-bounded at :data:`DECOMPOSE_CACHE_ENTRIES`.
    """
    if cache is None:
        cache = decomposition_cache(prefix_bytes)
    if type(fingerprint) is bytes:
        view = cache.get(fingerprint)
        if view is not None:
            return view
    fingerprint = check_fingerprint(fingerprint)
    # The one audited decomposition site (see module docstring): every
    # derived slice of a fingerprint in repro.dedup is produced here.
    suffix = fingerprint[prefix_bytes:]
    padded = (suffix + b"\x00" * SUFFIX_WORD_BYTES)[:SUFFIX_WORD_BYTES]
    view = FingerprintView(
        bin_id=int.from_bytes(fingerprint[:prefix_bytes], "big"),
        suffix=suffix,
        lo=int.from_bytes(padded[:8], "big"),
        hi=int.from_bytes(padded[8:], "big"))
    cache[fingerprint] = view
    if len(cache) > DECOMPOSE_CACHE_ENTRIES:
        del cache[next(iter(cache))]
    return view


@runtime_checkable
class FingerprintIndex(Protocol):
    """What every fingerprint index must support."""

    def lookup(self, fingerprint: bytes) -> Optional[Any]:
        """Stored value for ``fingerprint``, or None on a miss."""

    def insert(self, fingerprint: bytes, value: Any) -> bool:
        """Store ``value``; returns True if the fingerprint was new."""

    def __len__(self) -> int:
        """Number of stored fingerprints."""


class ReferenceIndex:
    """Ground-truth index: a plain dict.

    Exists so property tests can assert that the bin table and the GPU
    linear bins agree with the obviously correct implementation.
    """

    __slots__ = ("_table",)

    def __init__(self) -> None:
        self._table: dict[bytes, Any] = {}

    def lookup(self, fingerprint: bytes) -> Optional[Any]:
        return self._table.get(check_fingerprint(fingerprint))

    def insert(self, fingerprint: bytes, value: Any) -> bool:
        fingerprint = check_fingerprint(fingerprint)
        existed = fingerprint in self._table
        self._table[fingerprint] = value
        return not existed

    def __len__(self) -> int:
        return len(self._table)
