"""Fingerprint-index interface plus the trivial reference implementation.

Every index variant (the CPU bin table, the GPU linear bins, the plain
dict used as ground truth in property tests) answers the same question:
*have we stored a chunk with this fingerprint before?*
"""

from __future__ import annotations

from typing import Any, Optional, Protocol, runtime_checkable

from repro.errors import IndexError_
from repro.types import FINGERPRINT_BYTES


def check_fingerprint(fingerprint: bytes) -> bytes:
    """Validate a fingerprint's type and length."""
    if not isinstance(fingerprint, (bytes, bytearray)):
        raise IndexError_(f"fingerprint must be bytes, got "
                          f"{type(fingerprint).__name__}")
    if len(fingerprint) != FINGERPRINT_BYTES:
        raise IndexError_(
            f"fingerprint must be {FINGERPRINT_BYTES} bytes, "
            f"got {len(fingerprint)}")
    return bytes(fingerprint)


@runtime_checkable
class FingerprintIndex(Protocol):
    """What every fingerprint index must support."""

    def lookup(self, fingerprint: bytes) -> Optional[Any]:
        """Stored value for ``fingerprint``, or None on a miss."""

    def insert(self, fingerprint: bytes, value: Any) -> bool:
        """Store ``value``; returns True if the fingerprint was new."""

    def __len__(self) -> int:
        """Number of stored fingerprints."""


class ReferenceIndex:
    """Ground-truth index: a plain dict.

    Exists so property tests can assert that the bin table and the GPU
    linear bins agree with the obviously correct implementation.
    """

    def __init__(self) -> None:
        self._table: dict[bytes, Any] = {}

    def lookup(self, fingerprint: bytes) -> Optional[Any]:
        return self._table.get(check_fingerprint(fingerprint))

    def insert(self, fingerprint: bytes, value: Any) -> bool:
        fingerprint = check_fingerprint(fingerprint)
        existed = fingerprint in self._table
        self._table[fingerprint] = value
        return not existed

    def __len__(self) -> int:
        return len(self._table)
