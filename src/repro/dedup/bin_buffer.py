"""The bin buffer (paper §3.3).

A small per-bin staging area in front of the bin trees: fresh fingerprints
land here first, so

* very recent duplicates hit a cheap buffer probe instead of a tree walk
  ("chunks are more likely to find duplicates in the bin buffer due to
  temporal locality"), and
* a bin's entries leave the buffer *together* when it fills, giving the
  SSD "appropriate sequential writes" and giving the GPU one batched bin
  update instead of per-entry dribble.

The buffer only stages; on flush the engine moves the entries into the
bin tree, destages them sequentially, and updates the GPU-resident bin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.dedup.index_base import (FingerprintView, decompose,
                                    decomposition_cache)
from repro.errors import IndexError_


@dataclass(frozen=True, slots=True)
class FlushEvent:
    """One bin's worth of entries leaving the buffer."""

    bin_id: int
    #: (full fingerprint, value) pairs in insertion order.
    entries: tuple[tuple[bytes, Any], ...]

    @property
    def count(self) -> int:
        return len(self.entries)


class BinBuffer:
    """Per-bin staging buffer with flush-on-full semantics."""

    __slots__ = ("prefix_bytes", "per_bin_capacity", "total_capacity",
                 "_bins", "_total", "_cache", "lookups", "hits",
                 "flushes")

    def __init__(self, prefix_bytes: int = 2, per_bin_capacity: int = 64,
                 total_capacity: int | None = None):
        if not 1 <= prefix_bytes <= 4:
            raise IndexError_(
                f"prefix_bytes must be in [1, 4], got {prefix_bytes}")
        if per_bin_capacity < 1:
            raise IndexError_(
                f"per_bin_capacity must be >= 1, got {per_bin_capacity}")
        if total_capacity is not None and total_capacity < per_bin_capacity:
            raise IndexError_(
                f"total_capacity {total_capacity} smaller than one bin")
        self.prefix_bytes = prefix_bytes
        self.per_bin_capacity = per_bin_capacity
        #: Overall staging budget ("If the bin buffer becomes full, the
        #: buffer will be flushed"): exceeding it flushes the fullest bin.
        self.total_capacity = total_capacity
        # Staged entries keyed by *suffix* — within one bin the suffix
        # identifies the fingerprint, and suffix-keyed dicts compare
        # fewer bytes per probe.  FlushEvent still carries the full
        # fingerprints (reassembled from bin prefix + suffix).
        self._bins: dict[int, dict[bytes, Any]] = {}
        self._total = 0
        self._cache = decomposition_cache(prefix_bytes)
        # -- statistics --
        self.lookups = 0
        self.hits = 0
        self.flushes = 0

    def _view(self, fingerprint: bytes) -> FingerprintView:
        return decompose(fingerprint, self.prefix_bytes, self._cache)

    def _bin_of(self, fingerprint: bytes) -> int:
        return self._view(fingerprint).bin_id

    # -- probe / stage --------------------------------------------------------

    def lookup(self, fingerprint: bytes) -> Optional[Any]:
        """Value for a *recent* fingerprint still staged here, or None."""
        # Inlined view probe: one cache hit plus two dict reads.  The
        # try/except hit path is free on 3.11+; KeyError means a novel
        # fingerprint, TypeError an unhashable (bytearray) one — both
        # are what `decompose` handles.
        try:
            view = self._cache[fingerprint]
        except (KeyError, TypeError):
            view = decompose(fingerprint, self.prefix_bytes, self._cache)
        self.lookups += 1
        staged = self._bins.get(view.bin_id)
        if staged is None:
            return None
        value = staged.get(view.suffix)
        if value is not None:
            self.hits += 1
        return value

    def lookup_view(self, view: FingerprintView) -> Optional[Any]:
        """Like :meth:`lookup` for an already-decomposed fingerprint."""
        self.lookups += 1
        staged = self._bins.get(view.bin_id)
        if staged is None:
            return None
        value = staged.get(view.suffix)
        if value is not None:
            self.hits += 1
        return value

    def add(self, fingerprint: bytes, value: Any) -> Optional[FlushEvent]:
        """Stage a fresh fingerprint; returns a FlushEvent when a flush
        is due — either this bin filled, or the whole buffer exceeded its
        budget (then the *fullest* bin flushes, maximizing the sequential
        write the flush produces)."""
        return self.add_view(self._view(fingerprint), value)

    def add_view(self, view: FingerprintView,
                 value: Any) -> Optional[FlushEvent]:
        """Like :meth:`add` for an already-decomposed fingerprint."""
        staged = self._bins.setdefault(view.bin_id, {})
        if view.suffix in staged:
            fingerprint = self._fingerprint(view.bin_id, view.suffix)
            raise IndexError_(
                f"fingerprint {fingerprint.hex()[:12]}... staged twice — "
                "the engine must probe before adding")
        staged[view.suffix] = value
        self._total += 1
        if len(staged) >= self.per_bin_capacity:
            return self._flush_bin(view.bin_id)
        if self.total_capacity is not None \
                and self._total > self.total_capacity:
            fullest = max(self._bins, key=lambda b: len(self._bins[b]))
            return self._flush_bin(fullest)
        return None

    def _fingerprint(self, bin_id: int, suffix: bytes) -> bytes:
        return bin_id.to_bytes(self.prefix_bytes, "big") + suffix

    def _flush_bin(self, bin_id: int) -> FlushEvent:
        staged = self._bins.pop(bin_id)
        self._total -= len(staged)
        self.flushes += 1
        prefix = bin_id.to_bytes(self.prefix_bytes, "big")
        return FlushEvent(bin_id=bin_id, entries=tuple(
            (prefix + suffix, value) for suffix, value in staged.items()))

    # -- teardown / introspection ------------------------------------------------

    def flush_all(self) -> list[FlushEvent]:
        """Drain every partially filled bin (end of run / shutdown)."""
        events = [self._flush_bin(bin_id) for bin_id in list(self._bins)]
        return events

    def __len__(self) -> int:
        return self._total

    def staged_bins(self) -> int:
        """Bins currently holding staged entries."""
        return len(self._bins)

    def hit_rate(self) -> float:
        """Fraction of probes answered from the buffer."""
        return self.hits / self.lookups if self.lookups else 0.0
