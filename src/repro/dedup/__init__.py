"""Deduplication engine (paper §3.1).

The four classic stages — chunking, hashing, indexing, destaging — with
the paper's bin-based index design:

* :mod:`~repro.dedup.chunking` / :mod:`~repro.dedup.fingerprint` — fixed
  and content-defined (Rabin) chunkers.
* :mod:`~repro.dedup.hashing` — SHA-1 fingerprinting.
* :mod:`~repro.dedup.bins` — the CPU index: the hash table partitioned
  into prefix-selected bins ("so that multiple computing threads can
  check the chunks of multiple hash tables at the same time without
  locking mechanism"), each bin a B-tree, with prefix truncation to save
  memory.  RAM-resident only, as the paper prescribes.
* :mod:`~repro.dedup.bin_buffer` — the staging buffer that absorbs recent
  fingerprints and flushes full bins sequentially.
* :mod:`~repro.dedup.gpu_index` — the GPU-resident linear-bin index with
  pluggable :mod:`~repro.dedup.replacement` policies (random by default,
  per the paper).
* :mod:`~repro.dedup.engine` — the timed 4-stage pipeline.
"""

from repro.dedup.bin_buffer import BinBuffer
from repro.dedup.bins import BinTable
from repro.dedup.btree import BTree
from repro.dedup.chunking import ContentDefinedChunker, FixedChunker
from repro.dedup.fingerprint import RabinFingerprint
from repro.dedup.gpu_index import GpuBinIndex
from repro.dedup.hashing import fingerprint_chunk
from repro.dedup.index_base import FingerprintIndex, ReferenceIndex
from repro.dedup.replacement import (
    FifoReplacement,
    LruReplacement,
    RandomReplacement,
    ReplacementPolicy,
)

__all__ = [
    "BinBuffer",
    "BinTable",
    "BTree",
    "ContentDefinedChunker",
    "FixedChunker",
    "RabinFingerprint",
    "GpuBinIndex",
    "fingerprint_chunk",
    "FingerprintIndex",
    "ReferenceIndex",
    "FifoReplacement",
    "LruReplacement",
    "RandomReplacement",
    "ReplacementPolicy",
]
