"""Hashing stage: SHA-1 fingerprints for chunks.

"There is no data dependency between chunks when the hash value of the
chunk is calculated" — the stage is embarrassingly parallel, so the timed
pipeline simply runs one hashing task per chunk on the CPU's thread pool
(or batches them onto the GPU co-processor via
:class:`~repro.gpu.kernels.sha1.Sha1Kernel`).

This module holds the *functional* half: computing (payload mode) or
accepting (descriptor mode) the fingerprint.
"""

from __future__ import annotations

from repro.compression.memo import payload_fingerprint
from repro.errors import DedupError
from repro.types import Chunk

__all__ = ["fingerprint_chunk", "fingerprint_batch", "payload_fingerprint"]


def fingerprint_chunk(chunk: Chunk) -> bytes:
    """Set and return the chunk's SHA-1 fingerprint.

    Payload mode hashes the real bytes — through the same
    :func:`~repro.compression.memo.payload_fingerprint` the codec memo
    keys on, so one hash serves both dedup and memoization.  Descriptor
    mode requires the workload generator to have supplied a synthetic
    fingerprint already (duplicates share fingerprints, so indexing
    still behaves for real).
    """
    if chunk.payload is not None:
        chunk.fingerprint = payload_fingerprint(chunk.payload)
        return chunk.fingerprint
    if chunk.fingerprint is None:
        raise DedupError(
            f"descriptor-mode chunk at offset {chunk.offset} arrived at "
            "the hashing stage without a synthetic fingerprint")
    return chunk.fingerprint


def fingerprint_batch(chunks: list[Chunk]) -> list[bytes]:
    """Fingerprint many chunks (the natural unit for GPU offload)."""
    return [fingerprint_chunk(chunk) for chunk in chunks]
