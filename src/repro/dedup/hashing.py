"""Hashing stage: SHA-1 fingerprints for chunks.

"There is no data dependency between chunks when the hash value of the
chunk is calculated" — the stage is embarrassingly parallel, so the timed
pipeline simply runs one hashing task per chunk on the CPU's thread pool
(or batches them onto the GPU co-processor via
:class:`~repro.gpu.kernels.sha1.Sha1Kernel`).

This module holds the *functional* half: computing (payload mode) or
accepting (descriptor mode) the fingerprint.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.compression.memo import payload_fingerprint
from repro.errors import DedupError
from repro.types import Chunk

__all__ = ["fingerprint_chunk", "fingerprint_batch", "fingerprint_window",
           "PayloadHashMemo", "payload_fingerprint"]

#: Default entry budget of the batched path's payload-hash memo.  At the
#: 4 KiB default chunk size a full memo holds ~16 MB of referenced
#: payloads, each avoiding a ~3 µs SHA-1 for a ~0.2 µs dict probe on
#: duplicate-heavy windows.
DEFAULT_HASH_MEMO_ENTRIES = 4096


class PayloadHashMemo:
    """Bounded LRU of SHA-1 digests keyed by the payload bytes.

    The batched hashing pass's duplicate short-circuit: on dup-heavy
    windows most payloads are byte-identical repeats, and ``bytes``
    caches its own hash after the first use, so a memo probe is an
    order of magnitude cheaper than re-digesting 4 KiB.  Pure
    memoization of a pure function — the returned digest is the exact
    object a previous :func:`payload_fingerprint` produced, so dedup
    outcomes are unchanged.
    """

    __slots__ = ("capacity", "hits", "misses", "evictions", "_entries",
                 "verifier")

    def __init__(self, capacity: int = DEFAULT_HASH_MEMO_ENTRIES):
        if capacity < 1:
            raise DedupError(
                f"hash memo capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: OrderedDict[bytes, bytes] = OrderedDict()
        #: Optional :class:`repro.verify.MemoVerifier` replaying
        #: sampled digest hits against a fresh SHA-1.
        self.verifier = None

    def __len__(self) -> int:
        return len(self._entries)

    def digest(self, payload: bytes) -> bytes:
        """The payload's SHA-1, from cache when previously seen."""
        entries = self._entries
        cached = entries.get(payload)
        if cached is not None:
            entries.move_to_end(payload)
            self.hits += 1
            if self.verifier is not None:
                self.verifier.on_hit(
                    "payload-hash", cached,
                    lambda: payload_fingerprint(payload))
            return cached
        self.misses += 1
        fingerprint = payload_fingerprint(payload)
        if len(entries) >= self.capacity:
            entries.popitem(last=False)
            self.evictions += 1
        entries[payload] = fingerprint
        return fingerprint

    def stats(self) -> dict[str, int]:
        """Counters snapshot for reports and benchmarks."""
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "entries": len(self._entries)}


def fingerprint_chunk(chunk: Chunk) -> bytes:
    """Set and return the chunk's SHA-1 fingerprint.

    Payload mode hashes the real bytes — through the same
    :func:`~repro.compression.memo.payload_fingerprint` the codec memo
    keys on, so one hash serves both dedup and memoization.  Descriptor
    mode requires the workload generator to have supplied a synthetic
    fingerprint already (duplicates share fingerprints, so indexing
    still behaves for real).
    """
    if chunk.payload is not None:
        chunk.fingerprint = payload_fingerprint(chunk.payload)
        return chunk.fingerprint
    if chunk.fingerprint is None:
        raise DedupError(
            f"descriptor-mode chunk at offset {chunk.offset} arrived at "
            "the hashing stage without a synthetic fingerprint")
    return chunk.fingerprint


def fingerprint_batch(chunks: list[Chunk]) -> list[bytes]:
    """Fingerprint many chunks (the natural unit for GPU offload)."""
    return [fingerprint_chunk(chunk) for chunk in chunks]


def fingerprint_window(chunks: list[Chunk],
                       memo: PayloadHashMemo | None = None) -> list[bytes]:
    """One batched fingerprint pass over a functional-plane window.

    Semantically identical to calling :func:`fingerprint_chunk` on each
    chunk in order — same digests, same in-place ``chunk.fingerprint``
    assignment, same :class:`~repro.errors.DedupError` on an unhashable
    descriptor chunk — but with the hashlib/dispatch overhead hoisted
    out of the loop, and (with ``memo``) duplicate payloads resolved by
    an LRU probe instead of a fresh SHA-1.
    """
    if memo is None:
        digest = payload_fingerprint
    else:
        digest = memo.digest
    out: list[bytes] = []
    append = out.append
    for chunk in chunks:
        payload = chunk.payload
        if payload is not None:
            fingerprint = digest(payload)
            chunk.fingerprint = fingerprint
        else:
            fingerprint = chunk.fingerprint
            if fingerprint is None:
                raise DedupError(
                    f"descriptor-mode chunk at offset {chunk.offset} "
                    "arrived at the hashing stage without a synthetic "
                    "fingerprint")
        append(fingerprint)
    return out
