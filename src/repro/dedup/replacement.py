"""Replacement policies for capacity-limited GPU bins.

GPU bins are fixed-size linear tables; when a flush brings more entries
than a bin has free slots, something must go.  The paper uses random
replacement ("Currently, random based replacement policy is applied") and
leaves better policies open — so the policy is pluggable here, and the
A4 ablation benchmark compares random against FIFO and LRU.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod

from repro.errors import IndexError_


class ReplacementPolicy(ABC):
    """Chooses which slot of a full bin a new entry evicts."""

    __slots__ = ()

    @abstractmethod
    def choose_victim(self, bin_id: int, capacity: int) -> int:
        """Slot index in [0, capacity) to evict."""

    def on_insert(self, bin_id: int, slot: int) -> None:
        """Hook: a new entry landed in ``slot``."""

    def on_hit(self, bin_id: int, slot: int) -> None:
        """Hook: a lookup hit ``slot`` (recency signal)."""

    def forget_bin(self, bin_id: int) -> None:
        """Hook: a bin was dropped wholesale."""


class RandomReplacement(ReplacementPolicy):
    """The paper's default: evict a uniformly random slot."""

    __slots__ = ("_rng",)

    def __init__(self, *, seed: int):
        self._rng = random.Random(seed)

    def choose_victim(self, bin_id: int, capacity: int) -> int:
        if capacity < 1:
            raise IndexError_("empty bin has no victim")
        return self._rng.randrange(capacity)


class FifoReplacement(ReplacementPolicy):
    """Evict slots in arrival order with a per-bin rotating cursor."""

    __slots__ = ("_cursor",)

    def __init__(self) -> None:
        self._cursor: dict[int, int] = {}

    def choose_victim(self, bin_id: int, capacity: int) -> int:
        if capacity < 1:
            raise IndexError_("empty bin has no victim")
        victim = self._cursor.get(bin_id, 0) % capacity
        self._cursor[bin_id] = victim + 1
        return victim

    def forget_bin(self, bin_id: int) -> None:
        self._cursor.pop(bin_id, None)


class LruReplacement(ReplacementPolicy):
    """Evict the least recently used slot, tracking hits and inserts."""

    __slots__ = ("_clock", "_last_use")

    def __init__(self) -> None:
        self._clock = 0
        self._last_use: dict[tuple[int, int], int] = {}

    def _touch(self, bin_id: int, slot: int) -> None:
        self._clock += 1
        self._last_use[(bin_id, slot)] = self._clock

    def on_insert(self, bin_id: int, slot: int) -> None:
        self._touch(bin_id, slot)

    def on_hit(self, bin_id: int, slot: int) -> None:
        self._touch(bin_id, slot)

    def choose_victim(self, bin_id: int, capacity: int) -> int:
        if capacity < 1:
            raise IndexError_("empty bin has no victim")
        return min(range(capacity),
                   key=lambda slot: self._last_use.get((bin_id, slot), -1))

    def forget_bin(self, bin_id: int) -> None:
        stale = [key for key in self._last_use if key[0] == bin_id]
        for key in stale:
            del self._last_use[key]
