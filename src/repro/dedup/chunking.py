"""Stream chunkers: fixed-size and content-defined.

The paper's evaluation uses fixed 4 KiB chunks (block storage I/Os map
1:1 onto chunks), but the dedup literature it builds on — and any system
a downstream user would adopt — also needs content-defined chunking, so
both are provided behind one interface.
"""

from __future__ import annotations

from typing import Iterator

from repro.dedup.fingerprint import RabinFingerprint
from repro.errors import ChunkingError
from repro.types import Chunk, DEFAULT_CHUNK_SIZE


class FixedChunker:
    """Cut a stream into fixed-size chunks (last one may be short)."""

    __slots__ = ("chunk_size",)

    def __init__(self, chunk_size: int = DEFAULT_CHUNK_SIZE):
        if chunk_size < 1:
            raise ChunkingError(f"invalid chunk size {chunk_size}")
        self.chunk_size = chunk_size

    def chunk(self, data: bytes, base_offset: int = 0) -> Iterator[Chunk]:
        """Yield chunks covering ``data`` in order."""
        for start in range(0, len(data), self.chunk_size):
            payload = data[start:start + self.chunk_size]
            yield Chunk(offset=base_offset + start, size=len(payload),
                        payload=payload)


class ContentDefinedChunker:
    """Rabin-based content-defined chunker.

    A boundary is declared after any byte where the rolling hash of the
    trailing window satisfies ``hash & mask == target``; ``avg_size`` must
    be a power of two and sets the mask.  ``min_size``/``max_size`` clamp
    pathological runs (all-zero data never matches; random data matches
    everywhere).
    """

    __slots__ = ("avg_size", "min_size", "max_size", "window",
                 "_mask", "_target")

    def __init__(self, avg_size: int = DEFAULT_CHUNK_SIZE,
                 min_size: int | None = None, max_size: int | None = None,
                 window: int = 48):
        if avg_size < 64 or avg_size & (avg_size - 1):
            raise ChunkingError(
                f"avg_size must be a power of two >= 64, got {avg_size}")
        self.avg_size = avg_size
        self.min_size = min_size if min_size is not None else avg_size // 4
        self.max_size = max_size if max_size is not None else avg_size * 4
        if not 0 < self.min_size <= avg_size <= self.max_size:
            raise ChunkingError(
                f"need 0 < min {self.min_size} <= avg {avg_size} <= "
                f"max {self.max_size}")
        self.window = window
        self._mask = avg_size - 1
        #: Any fixed value in [0, mask]; chosen nonzero so that long zero
        #: runs do not match trivially.
        self._target = 1

    def boundaries(self, data: bytes) -> list[int]:
        """Cut points (exclusive chunk ends) for ``data``."""
        cuts: list[int] = []
        rabin = RabinFingerprint(window=self.window)
        chunk_start = 0
        for pos, byte in enumerate(data):
            rabin.roll(byte)
            length = pos + 1 - chunk_start
            at_cut = (rabin.primed
                      and length >= self.min_size
                      and (rabin.value & self._mask) == self._target)
            if at_cut or length >= self.max_size:
                cuts.append(pos + 1)
                chunk_start = pos + 1
                rabin.reset()
        if chunk_start < len(data):
            cuts.append(len(data))
        return cuts

    def chunk(self, data: bytes, base_offset: int = 0) -> Iterator[Chunk]:
        """Yield content-defined chunks covering ``data`` in order."""
        start = 0
        for end in self.boundaries(data):
            payload = data[start:end]
            yield Chunk(offset=base_offset + start, size=len(payload),
                        payload=payload)
            start = end
