"""GPU-resident bin index (paper §3.1(2)).

The GPU performs bin-based indexing "just like on a CPU", but each bin is
a *linear table* so the lookup kernel's memory accesses stay coalesced
and branch-free.  Only the hash values live in device memory; all other
chunk metadata stays host-side, and the kernel result is the per-query
"(index number, hit/miss)" pair the paper describes.

Fingerprint storage: the bin id already encodes the ``prefix_bytes``
prefix (prefix truncation, as on the CPU), and the linear layout packs
the next 16 suffix bytes into two u64 lanes.  Dropping the final 2 bytes
of the SHA-1 suffix leaves 128 compared bits — collision odds are far
below device-error rates, the standard dedup-system trade.

Bins have fixed capacity; when a bin-buffer flush overflows one, the
pluggable :class:`~repro.dedup.replacement.ReplacementPolicy` picks the
victims (random by default, per the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.dedup.index_base import (FingerprintView, check_fingerprint,
                                    decompose, decomposition_cache)
from repro.dedup.replacement import RandomReplacement, ReplacementPolicy
from repro.errors import IndexError_
from repro.gpu.costs import DEFAULT_GPU_COSTS, GpuKernelCosts
from repro.gpu.kernels.indexing import BinLookupKernel, LookupBatch
from repro.gpu.memory import DeviceMemory
from repro.types import FINGERPRINT_BYTES

#: Device bytes per entry: two u64 suffix lanes.
ENTRY_BYTES = 16


@dataclass(slots=True)
class _GpuBin:
    lo: np.ndarray
    hi: np.ndarray
    count: int


class GpuBinIndex:
    """Capacity-limited linear-bin fingerprint index in device memory."""

    __slots__ = ("prefix_bytes", "bin_capacity", "policy", "memory",
                 "costs", "_bins", "_size", "_cache",
                 "_policy_tracks_inserts", "_policy_tracks_hits",
                 "evictions", "lookups", "hits")

    def __init__(self, prefix_bytes: int = 2, bin_capacity: int = 512,
                 policy: Optional[ReplacementPolicy] = None,
                 memory: Optional[DeviceMemory] = None,
                 costs: GpuKernelCosts = DEFAULT_GPU_COSTS):
        if not 1 <= prefix_bytes <= 4:
            raise IndexError_(
                f"prefix_bytes must be in [1, 4], got {prefix_bytes}")
        if bin_capacity < 1:
            raise IndexError_(
                f"bin_capacity must be >= 1, got {bin_capacity}")
        self.prefix_bytes = prefix_bytes
        self.bin_capacity = bin_capacity
        self.policy = policy if policy is not None \
            else RandomReplacement(seed=0)
        self.memory = memory
        self.costs = costs
        self._bins: dict[int, _GpuBin] = {}
        self._size = 0
        self._cache = decomposition_cache(prefix_bytes)
        # Batched installs and result recording may skip the per-entry
        # policy hook loops, but only when the policy does not override
        # the base no-op hooks (LRU does; random/FIFO do not).
        policy_type = type(self.policy)
        self._policy_tracks_inserts = (
            policy_type.on_insert is not ReplacementPolicy.on_insert)
        self._policy_tracks_hits = (
            policy_type.on_hit is not ReplacementPolicy.on_hit)
        # -- statistics --
        self.evictions = 0
        self.lookups = 0
        self.hits = 0

    # -- key handling ----------------------------------------------------------

    def _view(self, fingerprint: bytes) -> FingerprintView:
        return decompose(fingerprint, self.prefix_bytes, self._cache)

    def bin_of(self, fingerprint: bytes) -> int:
        """Bin number from the fingerprint prefix."""
        return self._view(fingerprint).bin_id

    def suffix_words(self, fingerprint: bytes) -> tuple[int, int]:
        """The 16 stored suffix bytes as two u64 words."""
        view = self._view(fingerprint)
        return view.lo, view.hi

    # -- mutation -----------------------------------------------------------

    def _bin(self, bin_id: int) -> _GpuBin:
        entry = self._bins.get(bin_id)
        if entry is None:
            if self.memory is not None:
                self.memory.alloc(self.bin_capacity * ENTRY_BYTES,
                                  label=f"gpu-bin-{bin_id}")
            entry = _GpuBin(
                lo=np.zeros(self.bin_capacity, dtype=np.uint64),
                hi=np.zeros(self.bin_capacity, dtype=np.uint64),
                count=0,
            )
            self._bins[bin_id] = entry
        return entry

    def insert(self, fingerprint: bytes) -> int:
        """Install a fingerprint; returns the slot used."""
        view = self._view(fingerprint)
        return self._insert_view(view)

    def _insert_view(self, view: FingerprintView) -> int:
        entry = self._bin(view.bin_id)
        if entry.count < self.bin_capacity:
            slot = entry.count
            entry.count += 1
            self._size += 1
        else:
            slot = self.policy.choose_victim(view.bin_id, self.bin_capacity)
            self.evictions += 1
        entry.lo[slot] = view.lo
        entry.hi[slot] = view.hi
        self.policy.on_insert(view.bin_id, slot)
        return slot

    def update_from_flush(
            self, entries: Iterable[tuple[bytes, object]]) -> int:
        """Apply a bin-buffer flush: install every flushed fingerprint.

        A flush carries one bin's worth of entries, so the free-slot
        portion installs as two array assignments instead of per-entry
        :meth:`insert` calls.  Overflow entries still evict one at a
        time, in arrival order, so the :class:`ReplacementPolicy` sees
        the exact victim sequence (and RNG draws) it always has.
        """
        return self.install_views(
            [self._view(fingerprint) for fingerprint, _value in entries])

    def install_views(self, views: "list[FingerprintView]") -> int:
        """:meth:`update_from_flush` over pre-decomposed views."""
        n = len(views)
        start = 0
        while start < n:
            bin_id = views[start].bin_id
            end = start
            while end < n and views[end].bin_id == bin_id:
                end += 1
            self._install_run(bin_id, views[start:end])
            start = end
        return n

    def _install_run(self, bin_id: int, run: "list[FingerprintView]") -> None:
        entry = self._bin(bin_id)
        fit = min(self.bin_capacity - entry.count, len(run))
        if fit > 0:
            base = entry.count
            entry.lo[base:base + fit] = np.fromiter(
                (v.lo for v in run[:fit]), dtype=np.uint64, count=fit)
            entry.hi[base:base + fit] = np.fromiter(
                (v.hi for v in run[:fit]), dtype=np.uint64, count=fit)
            entry.count += fit
            self._size += fit
            if self._policy_tracks_inserts:
                for slot in range(base, base + fit):
                    self.policy.on_insert(bin_id, slot)
        for view in run[fit:]:
            slot = self.policy.choose_victim(bin_id, self.bin_capacity)
            self.evictions += 1
            entry.lo[slot] = view.lo
            entry.hi[slot] = view.hi
            self.policy.on_insert(bin_id, slot)

    # -- lookup --------------------------------------------------------------

    def table_view(self) -> dict[int, tuple[np.ndarray, np.ndarray, int]]:
        """Kernel-facing view of the device-resident bins."""
        return {bin_id: (b.lo, b.hi, b.count)
                for bin_id, b in self._bins.items()}

    def make_batch(self, fingerprints: Sequence[bytes]) -> LookupBatch:
        """Build the query batch one kernel launch will resolve.

        The whole batch is decomposed in one numpy pass (join, reshape,
        two big-endian u64 views) rather than per-fingerprint slicing.
        Malformed input falls back to :func:`check_fingerprint` so the
        validation errors stay identical.
        """
        n = len(fingerprints)
        for fingerprint in fingerprints:
            if type(fingerprint) is not bytes \
                    or len(fingerprint) != FINGERPRINT_BYTES:
                check_fingerprint(fingerprint)
        raw = np.frombuffer(b"".join(fingerprints), dtype=np.uint8)
        raw = raw.reshape(n, FINGERPRINT_BYTES)
        p = self.prefix_bytes
        bin_ids = np.zeros(n, dtype=np.uint32)
        for col in range(p):
            bin_ids = (bin_ids << np.uint32(8)) | raw[:, col]
        lo = np.ascontiguousarray(
            raw[:, p:p + 8]).view(">u8").astype(np.uint64).ravel()
        hi = np.ascontiguousarray(
            raw[:, p + 8:p + 16]).view(">u8").astype(np.uint64).ravel()
        return LookupBatch.from_arrays(bin_ids, lo, hi)

    def make_kernel(self, fingerprints: Sequence[bytes],
                    use_simt: bool = False, tiled: bool = False):
        """Kernel object ready for :meth:`repro.gpu.device.GpuDevice.launch`.

        ``tiled`` selects the local-memory workgroup-per-bin variant
        (paper §3.1(2)'s local-memory design), which wins once several
        queries of a batch share a bin.
        """
        if tiled:
            from repro.gpu.kernels.indexing_tiled import \
                TiledBinLookupKernel
            return TiledBinLookupKernel(self.make_batch(fingerprints),
                                        self.table_view(),
                                        costs=self.costs,
                                        use_simt=use_simt)
        return BinLookupKernel(self.make_batch(fingerprints),
                               self.table_view(), costs=self.costs,
                               use_simt=use_simt)

    def lookup_host(self, fingerprints: Sequence[bytes]) -> list[bool]:
        """Functional lookup without a device (tests, calibration)."""
        if not fingerprints:
            return []
        slots = self.make_kernel(fingerprints).execute()
        return self.record_results(fingerprints, slots)

    def record_results(self, fingerprints: Sequence[bytes],
                       slots: np.ndarray) -> list[bool]:
        """Turn kernel slot output into hit booleans, updating stats."""
        slot_arr = np.asarray(slots)
        n = min(len(fingerprints), len(slot_arr))
        hit_mask = slot_arr[:n] >= 0
        self.lookups += n
        n_hits = int(np.count_nonzero(hit_mask))
        self.hits += n_hits
        if n_hits and self._policy_tracks_hits:
            # Hook order matters for stateful policies: ascending query
            # index, exactly as the historical per-entry loop fired.
            for qi in np.nonzero(hit_mask)[0].tolist():
                self.policy.on_hit(self.bin_of(fingerprints[qi]),
                                   int(slot_arr[qi]))
        return hit_mask.tolist()

    def clear(self) -> None:
        """Drop every bin (device memory freed, statistics kept)."""
        if self.memory is not None:
            for buffer in list(self.memory.live_buffers):
                if buffer.label.startswith("gpu-bin-"):
                    buffer.free()
        self._bins.clear()
        self._size = 0

    # -- accounting ---------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def device_bytes(self) -> int:
        """Device memory the allocated bins occupy."""
        return len(self._bins) * self.bin_capacity * ENTRY_BYTES

    def hit_rate(self) -> float:
        """Fraction of lookups that hit."""
        return self.hits / self.lookups if self.lookups else 0.0
