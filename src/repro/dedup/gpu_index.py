"""GPU-resident bin index (paper §3.1(2)).

The GPU performs bin-based indexing "just like on a CPU", but each bin is
a *linear table* so the lookup kernel's memory accesses stay coalesced
and branch-free.  Only the hash values live in device memory; all other
chunk metadata stays host-side, and the kernel result is the per-query
"(index number, hit/miss)" pair the paper describes.

Fingerprint storage: the bin id already encodes the ``prefix_bytes``
prefix (prefix truncation, as on the CPU), and the linear layout packs
the next 16 suffix bytes into two u64 lanes.  Dropping the final 2 bytes
of the SHA-1 suffix leaves 128 compared bits — collision odds are far
below device-error rates, the standard dedup-system trade.

Bins have fixed capacity; when a bin-buffer flush overflows one, the
pluggable :class:`~repro.dedup.replacement.ReplacementPolicy` picks the
victims (random by default, per the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.dedup.index_base import check_fingerprint
from repro.dedup.replacement import RandomReplacement, ReplacementPolicy
from repro.errors import IndexError_
from repro.gpu.costs import DEFAULT_GPU_COSTS, GpuKernelCosts
from repro.gpu.kernels.indexing import BinLookupKernel, LookupBatch
from repro.gpu.memory import DeviceMemory

#: Device bytes per entry: two u64 suffix lanes.
ENTRY_BYTES = 16


@dataclass
class _GpuBin:
    lo: np.ndarray
    hi: np.ndarray
    count: int


class GpuBinIndex:
    """Capacity-limited linear-bin fingerprint index in device memory."""

    def __init__(self, prefix_bytes: int = 2, bin_capacity: int = 512,
                 policy: Optional[ReplacementPolicy] = None,
                 memory: Optional[DeviceMemory] = None,
                 costs: GpuKernelCosts = DEFAULT_GPU_COSTS):
        if not 1 <= prefix_bytes <= 4:
            raise IndexError_(
                f"prefix_bytes must be in [1, 4], got {prefix_bytes}")
        if bin_capacity < 1:
            raise IndexError_(
                f"bin_capacity must be >= 1, got {bin_capacity}")
        self.prefix_bytes = prefix_bytes
        self.bin_capacity = bin_capacity
        self.policy = policy if policy is not None \
            else RandomReplacement(seed=0)
        self.memory = memory
        self.costs = costs
        self._bins: dict[int, _GpuBin] = {}
        self._size = 0
        # -- statistics --
        self.evictions = 0
        self.lookups = 0
        self.hits = 0

    # -- key handling ----------------------------------------------------------

    def bin_of(self, fingerprint: bytes) -> int:
        """Bin number from the fingerprint prefix."""
        fingerprint = check_fingerprint(fingerprint)
        return int.from_bytes(fingerprint[:self.prefix_bytes], "big")

    def suffix_words(self, fingerprint: bytes) -> tuple[int, int]:
        """The 16 stored suffix bytes as two u64 words."""
        suffix = check_fingerprint(fingerprint)[self.prefix_bytes:]
        padded = (suffix + b"\x00" * 16)[:16]
        return (int.from_bytes(padded[:8], "big"),
                int.from_bytes(padded[8:16], "big"))

    # -- mutation -----------------------------------------------------------

    def _bin(self, bin_id: int) -> _GpuBin:
        entry = self._bins.get(bin_id)
        if entry is None:
            if self.memory is not None:
                self.memory.alloc(self.bin_capacity * ENTRY_BYTES,
                                  label=f"gpu-bin-{bin_id}")
            entry = _GpuBin(
                lo=np.zeros(self.bin_capacity, dtype=np.uint64),
                hi=np.zeros(self.bin_capacity, dtype=np.uint64),
                count=0,
            )
            self._bins[bin_id] = entry
        return entry

    def insert(self, fingerprint: bytes) -> int:
        """Install a fingerprint; returns the slot used."""
        bin_id = self.bin_of(fingerprint)
        lo, hi = self.suffix_words(fingerprint)
        entry = self._bin(bin_id)
        if entry.count < self.bin_capacity:
            slot = entry.count
            entry.count += 1
            self._size += 1
        else:
            slot = self.policy.choose_victim(bin_id, self.bin_capacity)
            self.evictions += 1
        entry.lo[slot] = lo
        entry.hi[slot] = hi
        self.policy.on_insert(bin_id, slot)
        return slot

    def update_from_flush(
            self, entries: Iterable[tuple[bytes, object]]) -> int:
        """Apply a bin-buffer flush: install every flushed fingerprint."""
        installed = 0
        for fingerprint, _value in entries:
            self.insert(fingerprint)
            installed += 1
        return installed

    # -- lookup --------------------------------------------------------------

    def table_view(self) -> dict[int, tuple[np.ndarray, np.ndarray, int]]:
        """Kernel-facing view of the device-resident bins."""
        return {bin_id: (b.lo, b.hi, b.count)
                for bin_id, b in self._bins.items()}

    def make_batch(self, fingerprints: Sequence[bytes]) -> LookupBatch:
        """Build the query batch one kernel launch will resolve."""
        queries = []
        for fingerprint in fingerprints:
            lo, hi = self.suffix_words(fingerprint)
            queries.append((self.bin_of(fingerprint), lo, hi))
        return LookupBatch.from_queries(queries)

    def make_kernel(self, fingerprints: Sequence[bytes],
                    use_simt: bool = False, tiled: bool = False):
        """Kernel object ready for :meth:`repro.gpu.device.GpuDevice.launch`.

        ``tiled`` selects the local-memory workgroup-per-bin variant
        (paper §3.1(2)'s local-memory design), which wins once several
        queries of a batch share a bin.
        """
        if tiled:
            from repro.gpu.kernels.indexing_tiled import \
                TiledBinLookupKernel
            return TiledBinLookupKernel(self.make_batch(fingerprints),
                                        self.table_view(),
                                        costs=self.costs,
                                        use_simt=use_simt)
        return BinLookupKernel(self.make_batch(fingerprints),
                               self.table_view(), costs=self.costs,
                               use_simt=use_simt)

    def lookup_host(self, fingerprints: Sequence[bytes]) -> list[bool]:
        """Functional lookup without a device (tests, calibration)."""
        if not fingerprints:
            return []
        slots = self.make_kernel(fingerprints).execute()
        return self.record_results(fingerprints, slots)

    def record_results(self, fingerprints: Sequence[bytes],
                       slots: np.ndarray) -> list[bool]:
        """Turn kernel slot output into hit booleans, updating stats."""
        hits: list[bool] = []
        for fingerprint, slot in zip(fingerprints, slots):
            self.lookups += 1
            hit = int(slot) >= 0
            if hit:
                self.hits += 1
                self.policy.on_hit(self.bin_of(fingerprint), int(slot))
            hits.append(hit)
        return hits

    def clear(self) -> None:
        """Drop every bin (device memory freed, statistics kept)."""
        if self.memory is not None:
            for buffer in list(self.memory.live_buffers):
                if buffer.label.startswith("gpu-bin-"):
                    buffer.free()
        self._bins.clear()
        self._size = 0

    # -- accounting ---------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def device_bytes(self) -> int:
        """Device memory the allocated bins occupy."""
        return len(self._bins) * self.bin_capacity * ENTRY_BYTES

    def hit_rate(self) -> float:
        """Fraction of lookups that hit."""
        return self.hits / self.lookups if self.lookups else 0.0
