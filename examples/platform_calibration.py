#!/usr/bin/env python3
"""Pick the right integration mode for *your* platform via dummy I/O.

The paper's closing idea (§4(3)): the best CPU/GPU split is
platform-dependent, so the system measures all four integration modes
with dummy I/O before committing.  This example calibrates three very
different platforms and shows the chooser flipping its answer.

Run:  python examples/platform_calibration.py
"""

from repro import calibrate_mode
from repro.cpu.model import CpuSpec
from repro.gpu.device import GpuSpec

PLATFORMS = {
    "paper testbed (i7-2600K + HD 7970)": dict(),
    "laptop with weak dGPU": dict(
        cpu_spec=CpuSpec(name="mobile quad", cores=4, threads=8,
                         freq_hz=2.4e9),
        gpu_spec=GpuSpec(name="entry dGPU", compute_units=4,
                         lanes_per_cu=32, freq_hz=600e6,
                         mem_bandwidth_bps=28e9,
                         mem_capacity_bytes=1024**3,
                         launch_overhead_s=180e-6,
                         sync_overhead_s=180e-6, occupancy=0.2)),
    "big dual-socket server, same GPU": dict(
        cpu_spec=CpuSpec(name="2S server", cores=24, threads=48,
                         freq_hz=2.6e9)),
}


def main() -> None:
    for name, spec in PLATFORMS.items():
        print(f"\n### {name}")
        result = calibrate_mode(dummy_chunks=6144, **spec)
        print(result.table())
        print(f"-> commit to {result.best_mode.value} "
              f"({result.speedup_over_cpu_only():.2f}x over CPU-only)")


if __name__ == "__main__":
    main()
