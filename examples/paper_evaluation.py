#!/usr/bin/env python3
"""Re-run the paper's evaluation section at reduced scale.

Prints the three §4 results and the Fig. 2 bars in one go, with the
paper's reported numbers alongside for comparison.  The full-scale runs
(2 GB streams, as in the paper) live in ``benchmarks/`` — this script is
the two-minute tour.

Run:  python examples/paper_evaluation.py
"""

from repro.bench.experiments import (
    SSD_IOPS,
    e2_dedup,
    e3_compression,
    e4_integration,
)
from repro.bench.reporting import BarChart, Table
from repro.core.modes import IntegrationMode

SCALE = 16384  # chunks per run; the paper's 2 GB stream is 524288


def section_4_1() -> None:
    results = e2_dedup(n_chunks=SCALE)
    cpu, gpu = results["cpu_only"], results["gpu_assisted"]
    gain = gpu.speedup_over(cpu) - 1
    print("\n§4(1) parallel data deduplication")
    print(f"  CPU-only:     {cpu.iops / 1e3:6.1f} K IOPS")
    print(f"  GPU-assisted: {gpu.iops / 1e3:6.1f} K IOPS "
          f"(+{gain:.1%}; paper: +15.0%)")
    print(f"  vs SSD:       {gpu.iops / SSD_IOPS:.2f}x (paper: ~3x)")


def section_4_2() -> None:
    rows = e3_compression(ratios=(1.2, 2.0, 4.0), n_chunks=SCALE)
    table = Table("§4(2) parallel data compression",
                  ["comp ratio", "CPU K IOPS", "GPU K IOPS", "GPU/CPU"])
    for row in rows:
        table.add_row(row.comp_ratio, row.cpu_iops / 1e3,
                      row.gpu_iops / 1e3, f"{row.gpu_advantage:.2f}x")
    table.print()
    print("  paper: CPU ~50 K at low ratio, GPU ~100 K everywhere, "
          "+88.3% overall")


def section_4_3() -> None:
    results = e4_integration(n_chunks=SCALE)
    chart = BarChart("§4(3) / Fig. 2: integration modes", unit=" K IOPS")
    for mode in IntegrationMode.all_modes():
        chart.add_bar(mode.value, results[mode].iops / 1e3)
    chart.print()
    cpu = results[IntegrationMode.CPU_ONLY]
    best = results[IntegrationMode.GPU_COMP]
    print(f"  GPU-for-compression wins: +"
          f"{best.speedup_over(cpu) - 1:.1%} over CPU-only "
          "(paper: +89.7%)")


if __name__ == "__main__":
    print(f"Simulated testbed, {SCALE} chunks "
          f"({SCALE * 4096 // 1024**2} MiB) per run, "
          "dedup 2.0 x comp 2.0")
    section_4_1()
    section_4_2()
    section_4_3()
