#!/usr/bin/env python3
"""A primary-storage scenario: virtual-desktop images on a reduced volume.

The paper's motivation is primary storage — think a VDI farm where many
desktops share most of their OS image.  This example builds that
scenario functionally:

* a "golden image" is cloned to N desktops (almost everything dedups);
* each desktop then writes some private, partly compressible data;
* a user-style I/O trace is recorded and replayed;
* the volume proves every byte back and reports the space economics.

Run:  python examples/primary_storage_server.py
"""

import io
import random

from repro import ReducedVolume
from repro.workload import TraceRecorder
from repro.workload.datagen import BlockContentGenerator

CHUNK = 4096
IMAGE_CHUNKS = 64          # 256 KiB golden image (scaled down)
DESKTOPS = 8
PRIVATE_CHUNKS = 8         # per-desktop unique data


def desktop_base(desktop: int) -> int:
    """Logical byte offset where a desktop's disk starts."""
    return desktop * (IMAGE_CHUNKS + PRIVATE_CHUNKS + 4) * CHUNK


def main() -> None:
    volume = ReducedVolume()
    trace = TraceRecorder()
    content = BlockContentGenerator(target_ratio=2.0, seed=7)
    rng = random.Random(42)

    golden = b"".join(content.make_block(CHUNK, salt=s)
                      for s in range(IMAGE_CHUNKS))

    print(f"Provisioning {DESKTOPS} desktops from a "
          f"{len(golden) // 1024} KiB golden image...")
    for desktop in range(DESKTOPS):
        base = desktop_base(desktop)
        volume.write(base, golden)
        trace.record("write", base, len(golden))

    after_clone = volume.physical_bytes
    print(f"  physical after cloning : {after_clone:>9,} B  "
          f"(dedup ratio {volume.dedup_ratio():.1f}x)")

    print("Desktops writing private data...")
    shadows: dict[int, bytes] = {}
    for desktop in range(DESKTOPS):
        base = desktop_base(desktop) + IMAGE_CHUNKS * CHUNK
        private = b"".join(
            content.make_block(CHUNK, salt=1000 + desktop * 100 + s)
            for s in range(PRIVATE_CHUNKS))
        volume.write(base, private)
        trace.record("write", base, len(private))
        shadows[desktop] = private

    print(f"  physical after private : {volume.physical_bytes:>9,} B")

    print("Random user reads (verified against ground truth)...")
    for _ in range(32):
        desktop = rng.randrange(DESKTOPS)
        which = rng.randrange(IMAGE_CHUNKS + PRIVATE_CHUNKS)
        offset = desktop_base(desktop) + which * CHUNK
        expected = (golden[which * CHUNK:(which + 1) * CHUNK]
                    if which < IMAGE_CHUNKS else
                    shadows[desktop][(which - IMAGE_CHUNKS) * CHUNK:
                                     (which - IMAGE_CHUNKS + 1) * CHUNK])
        assert volume.read(offset, CHUNK) == expected
        trace.record("read", offset, CHUNK)
    print("  all reads matched.")

    print("One desktop is re-imaged (overwrite) and one retired (TRIM)...")
    volume.write(desktop_base(0), golden)  # rewrite: pure dedup hits
    trace.record("write", desktop_base(0), len(golden))
    retired = desktop_base(DESKTOPS - 1)
    volume.discard(retired, (IMAGE_CHUNKS + PRIVATE_CHUNKS) * CHUNK)

    text = io.StringIO()
    trace.dump(text)
    print(f"\nTrace: {len(trace)} records, "
          f"{trace.total_bytes('write') // 1024} KiB written, "
          f"{trace.total_bytes('read') // 1024} KiB read "
          f"({len(text.getvalue())} B as text)")

    print("\n--- space report ---")
    print(f"logical bytes : {volume.logical_bytes:>9,}")
    print(f"physical bytes: {volume.physical_bytes:>9,}")
    print(f"dedup ratio   : {volume.dedup_ratio():>9.2f}x")
    print(f"reduction     : {volume.reduction_ratio():>9.2f}x")
    zombies = volume.engine.metadata.zombie_chunks
    swept = volume.engine.metadata.sweep_unreferenced()
    print(f"gc            : {zombies} unreferenced chunks, "
          f"{swept:,} B reclaimable")


if __name__ == "__main__":
    main()
