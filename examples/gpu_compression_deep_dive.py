#!/usr/bin/env python3
"""Inside the GPU compression path: segments, divergence, refinement.

Walks one 4 KiB chunk through the paper's §3.2 pipeline with everything
observable:

1. the segment-parallel LZ kernel runs through the *SIMT executor*, so
   wavefront-divergence statistics are measured, not assumed;
2. the raw per-segment outputs are shown (unrefined, as the GPU returns
   them);
3. CPU post-processing stitches and seam-repairs them into a canonical
   container that the ordinary LZSS decoder verifies;
4. the serial codec compresses the same chunk for a ratio comparison.

Run:  python examples/gpu_compression_deep_dive.py
"""

from repro.compression import LzssCodec, Match
from repro.compression.postprocess import refine_to_container
from repro.gpu.kernels.lz import SegmentLzKernel
from repro.workload.datagen import BlockContentGenerator

SEGMENTS = 8


def main() -> None:
    content = BlockContentGenerator(target_ratio=2.0, seed=11)
    content.calibrate()
    chunk = content.make_block(4096, salt=0)

    print(f"chunk: 4096 B, target compression ratio ~2.0\n")

    # 1. Segment-parallel search, through the SIMT executor.
    kernel = SegmentLzKernel([chunk], segments_per_chunk=SEGMENTS,
                             use_simt=True)
    outputs = kernel.execute()[0]
    stats = kernel._stats
    print(f"SIMT execution: {stats.threads} threads in "
          f"{stats.workgroups} workgroup(s)")
    print(f"  wavefront efficiency: {stats.wavefront_efficiency:.2f} "
          "(1.0 = no divergence; LZ parsing diverges by nature)")

    # 2. Raw per-segment results.
    print(f"\nraw GPU output ({SEGMENTS} segments):")
    for seg in outputs:
        matches = sum(1 for t in seg.tokens if isinstance(t, Match))
        literals = len(seg.tokens) - matches
        print(f"  segment {seg.segment_index}: bytes "
              f"[{seg.start:4d},{seg.end:4d})  "
              f"{matches:3d} matches, {literals:3d} literals")

    # 3. CPU refinement into the canonical container.
    refined = refine_to_container(chunk, outputs)
    raw = refine_to_container(chunk, outputs, repair_seams=False)
    decoded = LzssCodec().decode(refined)
    assert decoded == chunk, "round-trip failed!"
    print(f"\nCPU post-processing:")
    print(f"  without seam repair: {len(raw)} B")
    print(f"  with seam repair   : {len(refined)} B "
          f"(saved {len(raw) - len(refined)} B at segment seams)")
    print(f"  decoder verifies the refined stream byte-for-byte: OK")

    # 4. Against the serial parse.
    serial = LzssCodec().encode(chunk)
    print(f"\nratio comparison:")
    print(f"  serial LZSS        : {4096 / len(serial):.3f}x "
          f"({len(serial)} B)")
    print(f"  GPU {SEGMENTS}-segment path : {4096 / len(refined):.3f}x "
          f"({len(refined)} B)")
    loss = 1 - len(serial) / len(refined)
    print(f"  parallelism costs {abs(loss):.1%} of ratio — the paper's "
          "§3.2(2) trade for an ~8x shorter critical path")


if __name__ == "__main__":
    main()
