#!/usr/bin/env python3
"""Day-2 operations on a reduced volume: clone, scrub, restart, GC.

The features a storage admin actually touches, all running for real on
the functional volume:

1. instant clones via refcounts (snapshot a dataset, diverge it);
2. a patrol scrub that catches injected bit-rot by checksum;
3. a clean restart — data survives, the RAM-only fingerprint index does
   not, and the space ledger shows the (bounded) dedup loss;
4. garbage collection of unreferenced chunks;
5. the FTL view: why the reduced volume's smaller physical footprint
   compounds into far fewer flash erases.

Run:  python examples/storage_operations.py
"""

from repro.storage import Ftl, FtlSpec, ReducedVolume
from repro.workload.datagen import BlockContentGenerator

CHUNK = 4096


def main() -> None:
    volume = ReducedVolume()
    content = BlockContentGenerator(target_ratio=2.0, seed=3)

    print("1) Writing a 128 KiB dataset and cloning it (instant)...")
    dataset = b"".join(content.make_block(CHUNK, salt=s)
                       for s in range(32))
    volume.write(0, dataset)
    before = volume.physical_bytes
    volume.clone_range(0, 1024 * CHUNK, len(dataset))
    print(f"   physical before clone: {before:,} B, after: "
          f"{volume.physical_bytes:,} B (no data moved)")
    assert volume.read(1024 * CHUNK, len(dataset)) == dataset

    print("2) Patrol scrub, then injecting bit-rot and re-scrubbing...")
    report = volume.scrub()
    print(f"   clean scrub: {report['verified']}/{report['scanned']} "
          "chunks verified")
    victim = volume.engine.metadata.resolve(4 * CHUNK)
    rotted = bytearray(victim.blob)
    rotted[17] ^= 0x08
    victim.blob = bytes(rotted)
    report = volume.scrub()
    print(f"   after bit-rot: {report['corrupt']} corrupt chunk(s) at "
          f"logical offsets {report['corrupt_offsets']}")

    print("3) Clean restart (RAM-only index is lost, data is not)...")
    unique_before = volume.engine.metadata.unique_chunks
    volume.restart()
    assert volume.read(0, CHUNK) == dataset[:CHUNK]
    volume.write(2048 * CHUNK, dataset[:8 * CHUNK])  # rewrite old data
    print(f"   unique chunks before restart: {unique_before}, after "
          f"rewriting old content: "
          f"{volume.engine.metadata.unique_chunks} "
          "(duplicates of pre-restart data are stored again)")

    print("4) Retiring the clone AND the original, then collecting...")
    volume.discard(1024 * CHUNK, len(dataset))   # the clone
    volume.discard(0, len(dataset))              # the original
    zombies = volume.engine.metadata.zombie_chunks
    reclaimed = volume.engine.metadata.sweep_unreferenced()
    print(f"   {zombies} unreferenced chunks swept, "
          f"{reclaimed:,} B reclaimed "
          "(the post-restart rewrite keeps its own copies)")

    print("5) FTL view: identical churn, raw vs reduced footprint...")
    for label, factor in (("raw", 1.0), ("reduced 4x", 4.0)):
        ftl = Ftl(FtlSpec(blocks=32, pages_per_block=32))
        working = int(32 * 32 * 0.8 / factor)
        import random
        rng = random.Random(1)
        for lpn in range(working):
            ftl.write(lpn)
        for _ in range(working * 6):
            ftl.write(rng.randrange(working))
        print(f"   {label:<11} fill {ftl.utilization:.0%}  "
              f"write amp {ftl.write_amplification():.2f}  "
              f"erases {ftl.erases}")
    print("\nReduction keeps the device emptier, so each write also "
          "amplifies less — endurance wins twice.")


if __name__ == "__main__":
    main()
