#!/usr/bin/env python3
"""Quickstart: inline data reduction in ten lines, then a timed run.

Part 1 uses the functional :class:`repro.ReducedVolume` — real chunking,
real SHA-1 deduplication, real LZ compression, provable read-back.

Part 2 runs the paper's *timed* pipeline for a few thousand chunks on
the simulated testbed (i7-2600K + Radeon HD 7970 + Samsung SSD 830) and
prints the throughput the paper's evaluation is about.

Run:  python examples/quickstart.py
"""

from repro import IntegrationMode, ReducedVolume, run_mode
from repro.workload.datagen import BlockContentGenerator


def part1_functional_volume() -> None:
    print("=== Part 1: functional reduced volume ===")
    volume = ReducedVolume()

    # Write three copies of the same compressible 64 KiB extent.
    content = BlockContentGenerator(target_ratio=2.0, seed=1)
    extent = b"".join(content.make_block(4096, salt=s) for s in range(16))
    for copy in range(3):
        volume.write(copy * len(extent), extent)

    # Reads really decompress and really match.
    assert volume.read(0, len(extent)) == extent
    assert volume.read(2 * len(extent), 4096) == extent[:4096]

    print(f"logical bytes : {volume.logical_bytes:>10,}")
    print(f"physical bytes: {volume.physical_bytes:>10,}")
    print(f"dedup ratio   : {volume.dedup_ratio():>10.2f}x")
    print(f"reduction     : {volume.reduction_ratio():>10.2f}x "
          "(dedup x compression)")


def part2_timed_pipeline() -> None:
    print("\n=== Part 2: timed pipeline on the simulated testbed ===")
    for mode in (IntegrationMode.CPU_ONLY, IntegrationMode.GPU_COMP):
        report = run_mode(mode, n_chunks=8192,
                          dedup_ratio=2.0, comp_ratio=2.0)
        print(f"{mode.value:<10} {report.iops / 1e3:7.1f} K IOPS   "
              f"({report.mb_per_s:6.1f} MB/s, "
              f"cpu {report.cpu_utilization:.0%}, "
              f"gpu {report.gpu_utilization:.0%})")
    print("\nGPU-for-compression is the paper's winning integration "
          "(Fig. 2); see benchmarks/ for the full evaluation.")


if __name__ == "__main__":
    part1_functional_volume()
    part2_timed_pipeline()
